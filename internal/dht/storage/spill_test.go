package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// spillItem builds an item with the wire-registered test payload so it
// can round-trip through the spill log.
func spillItem(ns, rid string, iid int64, pad int, exp time.Time) *Item {
	return &Item{Namespace: ns, ResourceID: rid, InstanceID: iid,
		Payload: &itemPayload{S: strings.Repeat("x", pad)}, Expires: exp}
}

func newTestSpill(t *testing.T, cfg BoundedConfig, dir string) (*Spill, *clock) {
	t.Helper()
	c := &clock{t: time.Unix(0, 0)}
	s, err := NewSpill(c.now, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, c
}

// smallQuota returns a quota fitting exactly n items of the given pad
// whose resourceIDs are ridLen characters long.
func smallQuota(n, pad, ridLen int) int64 {
	return int64(n * spillItem("f", strings.Repeat("0", ridLen), 0, pad, time.Time{}).WireSize())
}

func TestSpillOverflowsToDiskAndMerges(t *testing.T) {
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(2, 40, 1)}}
	s, c := newTestSpill(t, cfg, t.TempDir())
	for i := int64(0); i < 5; i++ {
		s.Store(spillItem("f", fmt.Sprint(i), i, 40, c.t.Add(time.Hour)))
	}
	// Memory holds 2, disk holds 3; every item is still readable.
	if got := s.Usage().ByNamespace["f"]; got > smallQuota(2, 40, 1) {
		t.Fatalf("memory usage %d exceeds quota", got)
	}
	if s.TotalLen() != 5 {
		t.Fatalf("TotalLen = %d, want 5 across both tiers", s.TotalLen())
	}
	for i := int64(0); i < 5; i++ {
		got := s.Retrieve("f", fmt.Sprint(i))
		if len(got) != 1 || got[0].InstanceID != i {
			t.Fatalf("item %d: Retrieve = %v", i, got)
		}
	}
	st := s.Stats()
	if st.ItemsSpilled != 3 || st.SpilledLive != 3 || st.BytesSpilled == 0 {
		t.Fatalf("stats = %+v, want 3 spilled", st)
	}
	var order []string
	s.Scan("f", func(it *Item) bool {
		order = append(order, it.ResourceID)
		return true
	})
	if fmt.Sprint(order) != fmt.Sprint([]string{"0", "1", "2", "3", "4"}) {
		t.Fatalf("merged scan order = %v", order)
	}
}

func TestSpillRenewPromotesBackToMemory(t *testing.T) {
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(2, 40, 1)}}
	s, c := newTestSpill(t, cfg, t.TempDir())
	for i := int64(0); i < 4; i++ {
		s.Store(spillItem("f", fmt.Sprint(i), i, 40, c.t.Add(time.Hour)))
	}
	spilledBefore := s.Stats().SpilledLive
	if spilledBefore == 0 {
		t.Fatal("nothing spilled; test is vacuous")
	}
	// Item 0 was evicted first (oldest). Renewing it must land the
	// fresh copy in memory and tombstone the disk copy — with exactly
	// one instance visible afterwards.
	s.Store(spillItem("f", "0", 0, 40, c.t.Add(2*time.Hour)))
	got := s.Retrieve("f", "0")
	if len(got) != 1 || !got[0].Expires.Equal(c.t.Add(2*time.Hour)) {
		t.Fatalf("after renew: %v", got)
	}
	inMem := false
	s.b.Scan("f", func(it *Item) bool {
		if it.ResourceID == "0" {
			inMem = true
		}
		return true
	})
	if !inMem {
		t.Fatal("renewed item not promoted to the memory tier")
	}
	if s.TotalLen() != 4 {
		t.Fatalf("TotalLen = %d, want 4 (no duplicate across tiers)", s.TotalLen())
	}
}

func TestSpillExpiry(t *testing.T) {
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(1, 40, 4)}}
	s, c := newTestSpill(t, cfg, t.TempDir())
	s.Store(spillItem("f", "soon", 1, 40, c.t.Add(time.Minute)))
	s.Store(spillItem("f", "late", 2, 40, c.t.Add(time.Hour)))
	// "soon" (nearest expiry) was evicted to disk; NextExpiry must
	// still see it.
	at, ok := s.NextExpiry()
	if !ok || !at.Equal(c.t.Add(time.Minute)) {
		t.Fatalf("NextExpiry = %v,%v, want the spilled item's 1min", at, ok)
	}
	c.t = c.t.Add(5 * time.Minute)
	swept := s.SweepExpired()
	if len(swept) != 1 || swept[0].ResourceID != "soon" {
		t.Fatalf("sweep = %v, want the spilled item", swept)
	}
	if s.Stats().SpilledLive != 0 {
		t.Fatalf("expired spill ref not released: %+v", s.Stats())
	}
	if s.TotalLen() != 1 {
		t.Fatalf("TotalLen = %d, want 1", s.TotalLen())
	}
}

func TestSpillRestartReloadsAndDropsExpired(t *testing.T) {
	dir := t.TempDir()
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(1, 40, 4)}}
	c := &clock{t: time.Unix(0, 0)}
	s, err := NewSpill(c.now, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Store(spillItem("f", "dies", 1, 40, c.t.Add(time.Minute)))
	s.Store(spillItem("f", "livs", 2, 40, c.t.Add(time.Hour)))
	s.Store(spillItem("f", "memx", 3, 40, c.t.Add(time.Hour)))
	// "dies" and "livs" are on disk; "mem" is in memory and is LOST
	// on restart (memory is soft state; only the spill log persists).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	c.t = c.t.Add(10 * time.Minute) // "dies" expires while down
	s2, err := NewSpill(c.now, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Retrieve("f", "livs"); len(got) != 1 || got[0].InstanceID != 2 {
		t.Fatalf("surviving spilled item not reloaded: %v", got)
	}
	if p, ok := got0(s2.Retrieve("f", "livs")); ok && p.Payload.WireSize() != 4+40 {
		t.Fatalf("payload lost on reload: %+v", p)
	}
	if got := s2.Retrieve("f", "dies"); len(got) != 0 {
		t.Fatalf("item that expired while down came back: %v", got)
	}
	if got := s2.Retrieve("f", "memx"); len(got) != 0 {
		t.Fatalf("memory-tier item persisted across restart: %v", got)
	}
	if s2.Stats().SpilledLive != 1 {
		t.Fatalf("SpilledLive = %d, want 1", s2.Stats().SpilledLive)
	}
}

func got0(items []*Item) (*Item, bool) {
	if len(items) == 0 {
		return nil, false
	}
	return items[0], true
}

func TestSpillRemoveReachesDiskTier(t *testing.T) {
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(1, 40, 1)}}
	s, c := newTestSpill(t, cfg, t.TempDir())
	s.Store(spillItem("f", "a", 1, 40, c.t.Add(time.Hour)))
	s.Store(spillItem("f", "b", 2, 40, c.t.Add(2*time.Hour)))
	// "a" spilled. Remove must find it on disk.
	if !s.Remove("f", "a", 1) {
		t.Fatal("Remove missed the spilled item")
	}
	if s.Remove("f", "a", 1) {
		t.Fatal("double remove reported success")
	}
	if s.TotalLen() != 1 || s.Stats().SpilledLive != 0 {
		t.Fatalf("TotalLen=%d SpilledLive=%d", s.TotalLen(), s.Stats().SpilledLive)
	}
}

func TestSpillCompaction(t *testing.T) {
	dir := t.TempDir()
	cfg := BoundedConfig{Quotas: map[string]int64{"f": smallQuota(1, 200, 1)}}
	s, c := newTestSpill(t, cfg, dir)
	// Churn the same identities so the log accumulates dead records.
	for round := 0; round < 30; round++ {
		for i := int64(0); i < 4; i++ {
			s.Store(spillItem("f", fmt.Sprint(i), i, 200, c.t.Add(time.Hour)))
		}
	}
	path := filepath.Join(dir, spillLogName)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before.Size(), after.Size())
	}
	// Every identity still resolves, from whichever tier holds it.
	for i := int64(0); i < 4; i++ {
		if got := s.Retrieve("f", fmt.Sprint(i)); len(got) != 1 {
			t.Fatalf("item %d lost by compaction: %v", i, got)
		}
	}
	if s.deadBytes != 0 {
		t.Fatalf("deadBytes = %d after compact, want 0", s.deadBytes)
	}
}
