package storage

// Bounded wraps the in-memory Manager with per-namespace byte quotas
// and a total budget, evicting soft state instead of growing without
// bound. Eviction order within an over-quota namespace:
//
//  1. expired items first (a full sweep, which is reclamation the
//     expiry timer would have done anyway);
//  2. then the item nearest to expiry — soft state closest to being
//     forgotten is the cheapest to forget early;
//  3. immortal items (no lifetime) go last, in LRU order: a renew
//     re-stores the item, which refreshes its position.
//
// The reserved catalog namespaces (pier.stats, pier.index.def) are
// never evicted ahead of data namespaces: they are exempt from
// per-namespace quotas, and the total budget only touches them when no
// data namespace has anything left to give.

import (
	"container/heap"
	"sort"
	"time"
)

// DefaultHighWater is the fraction of a quota at which put-path
// backpressure engages when BoundedConfig.HighWater is unset.
const DefaultHighWater = 0.85

// reservedCatalogs are the namespaces holding the query-processing
// catalogs. The strings are duplicated from internal/stats.CatalogNS
// and internal/index.DefNS rather than imported, because those
// packages depend on storage.
var reservedCatalogs = []string{"pier.index.def", "pier.stats"}

// BoundedConfig configures quota enforcement. The zero value disables
// it (Enabled reports false) and the provider falls back to the plain
// Manager.
type BoundedConfig struct {
	// DefaultQuota is the per-namespace byte quota applied to any
	// namespace without an explicit entry in Quotas. 0 = unlimited.
	DefaultQuota int64
	// Quotas overrides the quota for specific namespaces. An explicit
	// entry wins even for reserved namespaces.
	Quotas map[string]int64
	// TotalBudget bounds the node's total in-memory soft-state bytes
	// across namespaces. 0 = unlimited.
	TotalBudget int64
	// HighWater is the quota fraction at which OverHighWater starts
	// reporting true, engaging put-path throttling before hard
	// eviction. 0 means DefaultHighWater.
	HighWater float64
	// Reserved lists catalog namespaces exempt from DefaultQuota and
	// evicted only as a last resort. nil means the pier.stats and
	// pier.index.def catalogs.
	Reserved []string
}

// Enabled reports whether any bound is configured.
func (c BoundedConfig) Enabled() bool {
	return c.DefaultQuota > 0 || len(c.Quotas) > 0 || c.TotalBudget > 0
}

// Bounded is the quota-enforcing Store. Like Manager it is event-loop
// confined; see the Store interface for the locking contract.
type Bounded struct {
	m           *Manager
	cfg         BoundedConfig
	reserved    map[string]bool
	victims     map[string]*victimHeap
	seq         uint64
	onEvict     func(*Item)
	stats       Stats
	evictedByNS map[string]int64
}

// NewBounded creates a quota-enforcing store over a fresh Manager.
func NewBounded(now func() time.Time, cfg BoundedConfig) *Bounded {
	if cfg.HighWater <= 0 {
		cfg.HighWater = DefaultHighWater
	}
	res := cfg.Reserved
	if res == nil {
		res = reservedCatalogs
	}
	b := &Bounded{
		m:           New(now),
		cfg:         cfg,
		reserved:    make(map[string]bool, len(res)),
		victims:     make(map[string]*victimHeap),
		evictedByNS: make(map[string]int64),
	}
	for _, ns := range res {
		b.reserved[ns] = true
	}
	return b
}

// SetEvictHook registers a callback invoked with each quota-evicted
// item after it leaves memory (the spill tier's capture point). Expiry
// sweeps do not trigger it.
func (b *Bounded) SetEvictHook(f func(*Item)) { b.onEvict = f }

// Store inserts the item, then enforces the namespace quota and total
// budget, evicting victims (possibly the item just stored) as needed.
func (b *Bounded) Store(it *Item) {
	b.m.Store(it)
	b.push(it)
	b.enforceNS(it.Namespace, it)
	b.enforceTotal(it)
}

// Retrieve returns the live items under (namespace, resourceID).
func (b *Bounded) Retrieve(namespace, resourceID string) []*Item {
	return b.m.Retrieve(namespace, resourceID)
}

// Remove deletes the exact identity, reporting whether it existed.
func (b *Bounded) Remove(namespace, resourceID string, instanceID int64) bool {
	return b.m.Remove(namespace, resourceID, instanceID)
}

// Scan iterates a namespace's live items in sorted order.
func (b *Bounded) Scan(namespace string, f func(*Item) bool) { b.m.Scan(namespace, f) }

// ScanAll iterates every live item across namespaces in sorted order.
func (b *Bounded) ScanAll(f func(*Item) bool) { b.m.ScanAll(f) }

// Namespaces lists the namespaces with at least one item.
func (b *Bounded) Namespaces() []string { return b.m.Namespaces() }

// Len returns the number of items in a namespace.
func (b *Bounded) Len(namespace string) int { return b.m.Len(namespace) }

// TotalLen returns the number of items across all namespaces.
func (b *Bounded) TotalLen() int { return b.m.TotalLen() }

// NextExpiry reports the earliest pending expiry time, if any.
func (b *Bounded) NextExpiry() (time.Time, bool) { return b.m.NextExpiry() }

// SweepExpired removes and returns every expired item.
func (b *Bounded) SweepExpired() []*Item { return b.m.SweepExpired() }

// Usage reports in-memory byte occupancy.
func (b *Bounded) Usage() Usage { return b.m.Usage() }

// Stats reports cumulative eviction counters.
func (b *Bounded) Stats() Stats {
	s := b.stats
	s.EvictedByNS = make(map[string]int64, len(b.evictedByNS))
	for ns, n := range b.evictedByNS {
		s.EvictedByNS[ns] = n
	}
	return s
}

// OverHighWater implements PressureReporter: true when the namespace
// (or the total budget) is past the high-water fraction of its bound.
// Reserved namespaces are never throttled.
func (b *Bounded) OverHighWater(namespace string) bool {
	if b.reserved[namespace] {
		if _, explicit := b.cfg.Quotas[namespace]; !explicit {
			return false
		}
	}
	if q := b.quotaFor(namespace); q > 0 {
		if float64(b.m.nsBytes[namespace]) >= b.cfg.HighWater*float64(q) {
			return true
		}
	}
	if b.cfg.TotalBudget > 0 &&
		float64(b.m.bytes) >= b.cfg.HighWater*float64(b.cfg.TotalBudget) {
		return true
	}
	return false
}

// quotaFor resolves the byte quota bounding a namespace; 0 = unlimited.
func (b *Bounded) quotaFor(namespace string) int64 {
	if q, ok := b.cfg.Quotas[namespace]; ok {
		return q
	}
	if b.reserved[namespace] {
		return 0
	}
	return b.cfg.DefaultQuota
}

// enforceNS evicts from namespace until it fits its quota. incoming is
// the item whose store triggered enforcement (an eviction of it counts
// as a dropped put).
func (b *Bounded) enforceNS(namespace string, incoming *Item) {
	q := b.quotaFor(namespace)
	if q <= 0 || b.m.nsBytes[namespace] <= q {
		return
	}
	// Expired-but-unswept items are reclaimed first; only then are
	// live victims chosen.
	b.m.SweepExpired()
	for b.m.nsBytes[namespace] > q {
		if !b.evictOne(namespace, incoming) {
			return
		}
	}
}

// enforceTotal evicts until the node fits its total budget, draining
// the largest data namespace first and touching reserved catalogs only
// when nothing else remains.
func (b *Bounded) enforceTotal(incoming *Item) {
	budget := b.cfg.TotalBudget
	if budget <= 0 || b.m.bytes <= budget {
		return
	}
	b.m.SweepExpired()
	for b.m.bytes > budget {
		ns, ok := b.largestNamespace(false)
		if !ok {
			ns, ok = b.largestNamespace(true)
		}
		if !ok || !b.evictOne(ns, incoming) {
			return
		}
	}
}

// largestNamespace picks the namespace with the most bytes (smallest
// name on ties, for deterministic replay), optionally considering the
// reserved catalogs.
func (b *Bounded) largestNamespace(includeReserved bool) (string, bool) {
	var (
		best  string
		bytes int64
		found bool
	)
	names := make([]string, 0, len(b.m.nsBytes))
	for ns := range b.m.nsBytes {
		names = append(names, ns)
	}
	sort.Strings(names)
	for _, ns := range names {
		if b.reserved[ns] && !includeReserved {
			continue
		}
		if v := b.m.nsBytes[ns]; !found || v > bytes {
			best, bytes, found = ns, v, true
		}
	}
	return best, found
}

// evictOne removes one victim from the namespace, reporting whether a
// victim was found.
func (b *Bounded) evictOne(namespace string, incoming *Item) bool {
	it := b.popVictim(namespace)
	if it == nil {
		return false
	}
	b.m.Remove(it.Namespace, it.ResourceID, it.InstanceID)
	if it == incoming {
		b.stats.PutsDropped++
	} else {
		b.stats.ItemsEvicted++
	}
	b.stats.BytesEvicted += int64(it.WireSize())
	b.evictedByNS[namespace]++
	if b.onEvict != nil {
		b.onEvict(it)
	}
	return true
}

// push records the item as a future eviction candidate. A re-store of
// the same identity leaves a stale entry behind, skipped at pop time
// by pointer identity against the currently stored item.
func (b *Bounded) push(it *Item) {
	h := b.victims[it.Namespace]
	if h == nil {
		h = &victimHeap{}
		b.victims[it.Namespace] = h
	}
	b.seq++
	heap.Push(h, victimEntry{it: it, seq: b.seq})
}

// popVictim returns the best live eviction candidate in the namespace,
// or nil when none remain.
func (b *Bounded) popVictim(namespace string) *Item {
	h := b.victims[namespace]
	if h == nil {
		return nil
	}
	for h.Len() > 0 {
		e := heap.Pop(h).(victimEntry)
		if cur, ok := b.m.get(e.it.Namespace, e.it.ResourceID, e.it.InstanceID); ok && cur == e.it {
			if h.Len() == 0 {
				delete(b.victims, namespace)
			}
			return e.it
		}
	}
	delete(b.victims, namespace)
	return nil
}

// victimEntry orders eviction candidates: expiring items before
// immortal ones, expiring by (Expires, seq), immortal by seq (LRU —
// a renew pushes a fresh entry, so older entries mean colder items).
type victimEntry struct {
	it  *Item
	seq uint64
}

func (e victimEntry) less(o victimEntry) bool {
	ee, oe := e.it.Expires, o.it.Expires
	switch {
	case ee.IsZero() && oe.IsZero():
		return e.seq < o.seq
	case ee.IsZero():
		return false
	case oe.IsZero():
		return true
	case !ee.Equal(oe):
		return ee.Before(oe)
	default:
		return e.seq < o.seq
	}
}

type victimHeap []victimEntry

func (h victimHeap) Len() int           { return len(h) }
func (h victimHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h victimHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *victimHeap) Push(x any)        { *h = append(*h, x.(victimEntry)) }
func (h *victimHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var (
	_ Store            = (*Bounded)(nil)
	_ PressureReporter = (*Bounded)(nil)
)
