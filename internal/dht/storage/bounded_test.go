package storage

import (
	"fmt"
	"testing"
	"time"
)

func newTestBounded(cfg BoundedConfig) (*Bounded, *clock) {
	c := &clock{t: time.Unix(0, 0)}
	return NewBounded(c.now, cfg), c
}

func sizedItem(ns, rid string, iid int64, size int, exp time.Time) *Item {
	return &Item{Namespace: ns, ResourceID: rid, InstanceID: iid, Payload: payload{size}, Expires: exp}
}

func TestBoundedEvictsExpiredFirst(t *testing.T) {
	// All rids are 4 chars so every item has identical WireSize and the
	// quota fits exactly three of them.
	probe := sizedItem("r", "xxxx", 0, 10, time.Time{})
	quota := int64(3 * probe.WireSize())
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	b.Store(sizedItem("r", "dead", 1, 10, c.t.Add(time.Minute)))
	b.Store(sizedItem("r", "live", 1, 10, c.t.Add(time.Hour)))
	c.t = c.t.Add(2 * time.Minute) // "dead" expires but is not swept
	b.Store(sizedItem("r", "aaaa", 1, 10, c.t.Add(time.Hour)))
	b.Store(sizedItem("r", "bbbb", 1, 10, c.t.Add(time.Hour)))
	// Four items ≈ quota+1: the expired one is reclaimed instead of a
	// live victim.
	if len(b.Retrieve("r", "live")) != 1 || len(b.Retrieve("r", "aaaa")) != 1 || len(b.Retrieve("r", "bbbb")) != 1 {
		t.Fatal("live item evicted while an expired item was reclaimable")
	}
	if b.Stats().ItemsEvicted != 0 {
		t.Fatalf("expiry reclamation counted as eviction: %+v", b.Stats())
	}
}

func TestBoundedEvictsNearestToExpiry(t *testing.T) {
	probe := sizedItem("r", "xxxx", 0, 10, time.Time{})
	quota := int64(2 * probe.WireSize())
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	b.Store(sizedItem("r", "far0", 1, 10, c.t.Add(10*time.Hour)))
	b.Store(sizedItem("r", "near", 1, 10, c.t.Add(time.Hour)))
	b.Store(sizedItem("r", "mid0", 1, 10, c.t.Add(5*time.Hour)))
	if len(b.Retrieve("r", "near")) != 0 {
		t.Fatal("nearest-to-expiry item survived over-quota store")
	}
	if len(b.Retrieve("r", "far0")) != 1 || len(b.Retrieve("r", "mid0")) != 1 {
		t.Fatal("wrong victim: far/mid should survive")
	}
	st := b.Stats()
	if st.ItemsEvicted != 1 || st.EvictedByNS["r"] != 1 {
		t.Fatalf("stats = %+v, want 1 eviction in r", st)
	}
}

func TestBoundedImmortalLRUAndRenewRefreshes(t *testing.T) {
	probe := sizedItem("r", "x", 0, 10, time.Time{})
	quota := int64(2 * probe.WireSize())
	b, _ := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	b.Store(sizedItem("r", "a", 1, 10, time.Time{}))
	b.Store(sizedItem("r", "b", 1, 10, time.Time{}))
	// Renewing "a" makes "b" the coldest immortal item.
	b.Store(sizedItem("r", "a", 1, 10, time.Time{}))
	b.Store(sizedItem("r", "c", 1, 10, time.Time{}))
	if len(b.Retrieve("r", "b")) != 0 {
		t.Fatal("coldest immortal item was not the LRU victim")
	}
	if len(b.Retrieve("r", "a")) != 1 || len(b.Retrieve("r", "c")) != 1 {
		t.Fatal("renewed/new items must survive")
	}
}

func TestBoundedExpiringEvictedBeforeImmortal(t *testing.T) {
	probe := sizedItem("r", "xxx", 0, 10, time.Time{})
	quota := int64(2 * probe.WireSize())
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	b.Store(sizedItem("r", "imm", 1, 10, time.Time{}))
	b.Store(sizedItem("r", "exp", 1, 10, c.t.Add(100*time.Hour)))
	b.Store(sizedItem("r", "new", 1, 10, time.Time{}))
	if len(b.Retrieve("r", "exp")) != 0 {
		t.Fatal("expiring item must be evicted before immortal state")
	}
	if len(b.Retrieve("r", "imm")) != 1 {
		t.Fatal("immortal item evicted while an expiring one remained")
	}
}

func TestBoundedIncomingItemCanBeDropped(t *testing.T) {
	probe := sizedItem("r", "x", 0, 10, time.Time{})
	quota := int64(2 * probe.WireSize())
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	b.Store(sizedItem("r", "a", 1, 10, c.t.Add(10*time.Hour)))
	b.Store(sizedItem("r", "b", 1, 10, c.t.Add(10*time.Hour)))
	// The incoming item expires soonest, so it is its own victim.
	b.Store(sizedItem("r", "soon", 1, 10, c.t.Add(time.Minute)))
	if len(b.Retrieve("r", "soon")) != 0 {
		t.Fatal("soonest-expiring incoming item should have been dropped")
	}
	st := b.Stats()
	if st.PutsDropped != 1 || st.ItemsEvicted != 0 {
		t.Fatalf("stats = %+v, want exactly one dropped put", st)
	}
}

func TestBoundedReservedNamespacesExemptFromDefaultQuota(t *testing.T) {
	probe := sizedItem("pier.stats", "x", 0, 10, time.Time{})
	quota := int64(probe.WireSize()) // default quota fits one item
	b, c := newTestBounded(BoundedConfig{DefaultQuota: quota})
	for i := int64(0); i < 10; i++ {
		b.Store(sizedItem("pier.stats", fmt.Sprint(i), i, 10, c.t.Add(time.Hour)))
		b.Store(sizedItem("pier.index.def", fmt.Sprint(i), i, 10, c.t.Add(time.Hour)))
	}
	if b.Len("pier.stats") != 10 || b.Len("pier.index.def") != 10 {
		t.Fatalf("reserved catalogs evicted under default quota: stats=%d defs=%d",
			b.Len("pier.stats"), b.Len("pier.index.def"))
	}
	if b.Stats().ItemsEvicted != 0 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestBoundedTotalBudgetDrainsDataBeforeReserved(t *testing.T) {
	data := sizedItem("tuples", "x", 0, 50, time.Time{})
	res := sizedItem("pier.stats", "x", 0, 10, time.Time{})
	budget := int64(2*data.WireSize() + 2*res.WireSize())
	b, c := newTestBounded(BoundedConfig{TotalBudget: budget})
	b.Store(sizedItem("pier.stats", "s1", 1, 10, c.t.Add(time.Hour)))
	b.Store(sizedItem("pier.stats", "s2", 2, 10, c.t.Add(time.Hour)))
	for i := int64(0); i < 4; i++ {
		b.Store(sizedItem("tuples", fmt.Sprint(i), i, 50, c.t.Add(time.Hour)))
	}
	if b.Len("pier.stats") != 2 {
		t.Fatalf("reserved catalog drained while data namespace had items: stats=%d", b.Len("pier.stats"))
	}
	if got := b.Usage().Bytes; got > budget {
		t.Fatalf("usage %d exceeds total budget %d", got, budget)
	}
	if ev := b.Stats().EvictedByNS; ev["tuples"] == 0 || ev["pier.stats"] != 0 {
		t.Fatalf("eviction fell on the wrong namespace: %v", ev)
	}
}

func TestBoundedNeverExceedsQuota(t *testing.T) {
	quota := int64(500)
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": quota}})
	for i := int64(0); i < 200; i++ {
		b.Store(sizedItem("r", fmt.Sprint(i%17), i%3, int(i%90)+5, c.t.Add(time.Duration(i%7+1)*time.Minute)))
		if got := b.Usage().ByNamespace["r"]; got > quota {
			t.Fatalf("after store %d: usage %d exceeds quota %d", i, got, quota)
		}
		if i%20 == 19 {
			c.t = c.t.Add(time.Minute)
		}
	}
}

func TestBoundedOverHighWater(t *testing.T) {
	probe := sizedItem("r", "x", 0, 80, time.Time{})
	one := int64(probe.WireSize())
	b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": 4 * one}})
	if b.OverHighWater("r") {
		t.Fatal("empty namespace over high water")
	}
	for i := int64(0); i < 3; i++ {
		b.Store(sizedItem("r", fmt.Sprint(i), i, 80, c.t.Add(time.Hour)))
	}
	// 3/4 = 0.75 < 0.85 default high water.
	if b.OverHighWater("r") {
		t.Fatal("over high water below the threshold")
	}
	b.Store(sizedItem("r", "3", 3, 80, c.t.Add(time.Hour)))
	if !b.OverHighWater("r") {
		t.Fatal("full namespace not over high water")
	}
	if b.OverHighWater("pier.stats") {
		t.Fatal("reserved namespace reported pressure")
	}
	if b.OverHighWater("other") {
		t.Fatal("unbounded namespace reported pressure")
	}
}

func TestBoundedEvictionDeterministic(t *testing.T) {
	run := func() []string {
		b, c := newTestBounded(BoundedConfig{Quotas: map[string]int64{"r": 400}})
		var evicted []string
		b.SetEvictHook(func(it *Item) {
			evicted = append(evicted, fmt.Sprintf("%s/%d@%d", it.ResourceID, it.InstanceID, it.Expires.Unix()))
		})
		for i := int64(0); i < 100; i++ {
			exp := time.Time{}
			if i%3 != 0 {
				exp = c.t.Add(time.Duration(i%11+1) * time.Minute)
			}
			b.Store(sizedItem("r", fmt.Sprint(i%13), i%5, int(i%60)+10, exp))
			if i%25 == 24 {
				c.t = c.t.Add(90 * time.Second)
			}
		}
		return evicted
	}
	a, bb := run(), run()
	if len(a) == 0 {
		t.Fatal("workload produced no evictions; test is vacuous")
	}
	if fmt.Sprint(a) != fmt.Sprint(bb) {
		t.Fatalf("eviction schedule not deterministic:\n%v\n%v", a, bb)
	}
}
