// Package storage implements the paper's storage manager (§3.2.2,
// Table 2): temporary, main-memory storage for DHT-based data while the
// node is connected. Every item carries a lifetime; soft state means an
// item not renewed within its lifetime is deleted (§3.2.3).
package storage

import (
	"container/heap"
	"sort"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
)

// Item is one stored object, named by the paper's
// (namespace, resourceID, instanceID) scheme (§3.2.3). The namespace
// identifies the relation, the resourceID usually carries the primary
// key or join attribute value, and the instanceID separates items that
// share both.
type Item struct {
	Namespace  string
	ResourceID string
	InstanceID int64
	Payload    env.Message
	Expires    time.Time
}

// Key returns the DHT key the item is stored under.
func (it *Item) Key() dht.Key { return dht.KeyOf(it.Namespace, it.ResourceID) }

// WireSize implements env.Message so items can ride in put/get/transfer
// messages.
func (it *Item) WireSize() int {
	n := env.StringSize(it.Namespace) + env.StringSize(it.ResourceID) + 16
	if it.Payload != nil {
		n += it.Payload.WireSize()
	}
	return n
}

// Manager is the per-node storage manager: the unbounded in-memory
// Store implementation. It is not internally synchronized — see the
// Store interface for the locking contract (event-loop confinement;
// the engine's sharded result dispatch never touches storage).
type Manager struct {
	now     func() time.Time
	spaces  map[string]map[string]map[int64]*Item
	exp     expHeap
	count   int
	bytes   int64
	nsBytes map[string]int64
}

// New creates a storage manager that reads the clock through now.
// The namespace maps are allocated lazily at the first Store: most
// simulated nodes never hold an item, and a nil map reads as empty.
func New(now func() time.Time) *Manager {
	return &Manager{now: now}
}

// Store inserts the item, replacing any existing item with the same
// (namespace, resourceID, instanceID) — which is exactly what a renew
// does (§3.2.3).
func (m *Manager) Store(it *Item) {
	if m.spaces == nil {
		m.spaces = make(map[string]map[string]map[int64]*Item)
	}
	ns, ok := m.spaces[it.Namespace]
	if !ok {
		// Namespaces are created implicitly when the first item is put.
		ns = make(map[string]map[int64]*Item)
		m.spaces[it.Namespace] = ns
	}
	rid, ok := ns[it.ResourceID]
	if !ok {
		rid = make(map[int64]*Item)
		ns[it.ResourceID] = rid
	}
	if old, existed := rid[it.InstanceID]; existed {
		m.charge(it.Namespace, -int64(old.WireSize()))
	} else {
		m.count++
	}
	rid[it.InstanceID] = it
	m.charge(it.Namespace, int64(it.WireSize()))
	if !it.Expires.IsZero() {
		heap.Push(&m.exp, expEntry{at: it.Expires, it: it})
	}
}

// Retrieve returns the live items stored under (namespace, resourceID).
// Like any index get, it is key-based and may return multiple items.
func (m *Manager) Retrieve(namespace, resourceID string) []*Item {
	ns := m.spaces[namespace]
	if ns == nil {
		return nil
	}
	rid := ns[resourceID]
	if len(rid) == 0 {
		return nil
	}
	now := m.now()
	out := make([]*Item, 0, len(rid))
	for _, it := range rid {
		if it.expired(now) {
			continue
		}
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceID < out[j].InstanceID })
	return out
}

// Remove deletes the item with the exact identity, reporting whether it
// existed.
func (m *Manager) Remove(namespace, resourceID string, instanceID int64) bool {
	ns := m.spaces[namespace]
	if ns == nil {
		return false
	}
	rid := ns[resourceID]
	if rid == nil {
		return false
	}
	it, ok := rid[instanceID]
	if !ok {
		return false
	}
	delete(rid, instanceID)
	m.count--
	m.charge(namespace, -int64(it.WireSize()))
	if len(rid) == 0 {
		delete(ns, resourceID)
	}
	if len(ns) == 0 {
		// Namespaces are destroyed when the last item goes (§3.2.3).
		delete(m.spaces, namespace)
	}
	return true
}

// Scan iterates the live local items of a namespace — the provider's
// lscan (§3.2.3) — in sorted (resourceID, instanceID) order. Iteration
// stops early if f returns false. The deterministic order matters:
// scans feed message-emitting paths (rehashes, handoffs, summaries),
// and a seed-replayable simulation needs identical send order per run.
func (m *Manager) Scan(namespace string, f func(*Item) bool) {
	m.scanSpace(m.spaces[namespace], f)
}

// ScanAll iterates every live item across namespaces in sorted order
// (used for handoff after a location-map change).
func (m *Manager) ScanAll(f func(*Item) bool) {
	for _, ns := range m.Namespaces() {
		stopped := false
		m.scanSpace(m.spaces[ns], func(it *Item) bool {
			ok := f(it)
			stopped = !ok
			return ok
		})
		if stopped {
			return
		}
	}
}

// scanSpace iterates one namespace's live items in sorted order.
func (m *Manager) scanSpace(space map[string]map[int64]*Item, f func(*Item) bool) {
	if len(space) == 0 {
		return
	}
	now := m.now()
	for _, rid := range env.SortedKeys(space) {
		insts := space[rid]
		for _, iid := range env.SortedKeys(insts) {
			it := insts[iid]
			if it.expired(now) {
				continue
			}
			if !f(it) {
				return
			}
		}
	}
}

// Namespaces lists the namespaces with at least one item.
func (m *Manager) Namespaces() []string {
	out := make([]string, 0, len(m.spaces))
	for ns := range m.spaces {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of items (live or not yet swept) in a
// namespace.
func (m *Manager) Len(namespace string) int {
	n := 0
	for _, rid := range m.spaces[namespace] {
		n += len(rid)
	}
	return n
}

// TotalLen returns the number of items across all namespaces.
func (m *Manager) TotalLen() int { return m.count }

// Usage reports in-memory byte occupancy (charged at Item.WireSize),
// maintained incrementally on every store/replace/remove.
func (m *Manager) Usage() Usage {
	by := make(map[string]int64, len(m.nsBytes))
	for ns, b := range m.nsBytes {
		by[ns] = b
	}
	return Usage{Bytes: m.bytes, ByNamespace: by}
}

// Stats reports eviction counters. The unbounded manager never evicts,
// so they are always zero.
func (m *Manager) Stats() Stats { return Stats{} }

// charge adjusts the byte accounting for a namespace by delta.
func (m *Manager) charge(namespace string, delta int64) {
	m.bytes += delta
	b := m.nsBytes[namespace] + delta
	if b == 0 {
		delete(m.nsBytes, namespace)
	} else {
		if m.nsBytes == nil {
			m.nsBytes = make(map[string]int64)
		}
		m.nsBytes[namespace] = b
	}
}

// get returns the stored item with the exact identity, ignoring expiry.
func (m *Manager) get(namespace, resourceID string, instanceID int64) (*Item, bool) {
	rid := m.spaces[namespace][resourceID]
	if rid == nil {
		return nil, false
	}
	it, ok := rid[instanceID]
	return it, ok
}

// NextExpiry reports the earliest pending expiry time, if any.
func (m *Manager) NextExpiry() (time.Time, bool) {
	for len(m.exp) > 0 {
		e := m.exp[0]
		if m.current(e) {
			return e.at, true
		}
		heap.Pop(&m.exp) // stale entry from a replace/renew/remove
	}
	return time.Time{}, false
}

// SweepExpired removes every item whose lifetime has passed and returns
// them. Renewed items are skipped (their heap entries are stale).
func (m *Manager) SweepExpired() []*Item {
	now := m.now()
	var out []*Item
	for len(m.exp) > 0 {
		e := m.exp[0]
		if !m.current(e) {
			heap.Pop(&m.exp)
			continue
		}
		if e.at.After(now) {
			break
		}
		heap.Pop(&m.exp)
		m.Remove(e.it.Namespace, e.it.ResourceID, e.it.InstanceID)
		out = append(out, e.it)
	}
	return out
}

// current reports whether the heap entry still describes the stored item.
func (m *Manager) current(e expEntry) bool {
	ns := m.spaces[e.it.Namespace]
	if ns == nil {
		return false
	}
	cur, ok := ns[e.it.ResourceID][e.it.InstanceID]
	return ok && cur == e.it && cur.Expires.Equal(e.at)
}

func (it *Item) expired(now time.Time) bool {
	return !it.Expires.IsZero() && !it.Expires.After(now)
}

type expEntry struct {
	at time.Time
	it *Item
}

type expHeap []expEntry

func (h expHeap) Len() int           { return len(h) }
func (h expHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h expHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x any)        { *h = append(*h, x.(expEntry)) }
func (h *expHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
