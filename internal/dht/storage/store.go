package storage

// The Store interface extracts the storage manager's contract so the
// provider can run against pluggable backends: the unbounded in-memory
// Manager, the quota-enforcing Bounded wrapper, and the disk-backed
// Spill tier. Conformance is checked by one shared property suite
// (conformance_test.go) run against every implementation.

import "time"

// Store is the per-node soft-state store (§3.2.2–§3.2.3): items carry
// lifetimes, a re-Store of the same (namespace, resourceID, instanceID)
// is a renew, and unrenewed items expire.
//
// Locking contract: implementations are NOT internally synchronized.
// A Store is confined to its node's event loop — every call site
// (provider puts/gets/handoff, index maintenance, stats refresh) runs
// as an event on that loop. The engine's sharded result dispatch
// (internal/core/dispatch.go) processes only result and credit frames
// on its shards and never touches storage, so event-loop confinement
// holds even with DispatchShards > 1. Cross-thread access must go
// through the node's event queue (e.g. Session.Do on real nodes).
type Store interface {
	// Store inserts the item, replacing any existing item with the
	// same identity (replace-is-renew, §3.2.3). Bounded backends may
	// evict other items — or drop this one — to stay within budget.
	Store(it *Item)
	// Retrieve returns the live items under (namespace, resourceID),
	// sorted by instanceID.
	Retrieve(namespace, resourceID string) []*Item
	// Remove deletes the exact identity, reporting whether it existed.
	Remove(namespace, resourceID string, instanceID int64) bool
	// Scan iterates a namespace's live items in sorted (resourceID,
	// instanceID) order — the provider's lscan. Stops early when f
	// returns false.
	Scan(namespace string, f func(*Item) bool)
	// ScanAll iterates every live item across namespaces in sorted
	// order.
	ScanAll(f func(*Item) bool)
	// Namespaces lists the namespaces with at least one item, sorted.
	Namespaces() []string
	// Len returns the number of items (live or not yet swept) in a
	// namespace.
	Len(namespace string) int
	// TotalLen returns the number of items across all namespaces.
	TotalLen() int
	// NextExpiry reports the earliest pending expiry time, if any.
	NextExpiry() (time.Time, bool)
	// SweepExpired removes every item whose lifetime has passed and
	// returns them.
	SweepExpired() []*Item
	// Usage reports current in-memory byte occupancy, charged at
	// Item.WireSize (the simulator's byte model), per namespace and in
	// total. Spilled-to-disk items are not counted.
	Usage() Usage
	// Stats reports cumulative eviction/spill/drop counters since the
	// store was created.
	Stats() Stats
}

// Usage is a point-in-time byte occupancy report. ByNamespace is a
// fresh copy per call; callers may keep or mutate it.
type Usage struct {
	// Bytes is total in-memory occupancy across namespaces.
	Bytes int64
	// ByNamespace maps namespace -> in-memory bytes.
	ByNamespace map[string]int64
}

// Stats counts what a bounded store has forgotten or displaced. The
// plain Manager never evicts, so it reports zeros.
type Stats struct {
	// ItemsEvicted counts items evicted to enforce a quota (not
	// counting normal lifetime expiry).
	ItemsEvicted int64
	// BytesEvicted is the WireSize sum of evicted items.
	BytesEvicted int64
	// ItemsSpilled counts evictions that were written to the disk
	// tier instead of discarded.
	ItemsSpilled int64
	// BytesSpilled is the WireSize sum of spilled items.
	BytesSpilled int64
	// PutsDropped counts stores rejected outright because the incoming
	// item itself was the eviction victim.
	PutsDropped int64
	// SpilledLive is the current number of live items resident on disk
	// (a gauge, unlike the cumulative counters above).
	SpilledLive int
	// EvictedByNS maps namespace -> items evicted from it (fresh copy
	// per call).
	EvictedByNS map[string]int64
}

// PressureReporter is implemented by stores that can signal put-path
// backpressure. The provider checks it on each incoming put and answers
// with a throttle message when the namespace is over its high-water
// mark.
type PressureReporter interface {
	// OverHighWater reports whether storing into the namespace should
	// be throttled at the source.
	OverHighWater(namespace string) bool
}

var _ Store = (*Manager)(nil)
