package storage

// The Store conformance suite: every behavior the provider relies on —
// store, replace-is-renew, lazy expiry, sweep, deterministic scan
// order, and byte accounting exact to WireSize — checked identically
// against all three implementations through one harness. A future
// backend added to forEachStore gets the whole contract for free.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// wideBounds configures the bounded and spill stores so generously that
// conformance behavior must match the unbounded manager exactly.
var wideBounds = BoundedConfig{DefaultQuota: 1 << 30, TotalBudget: 1 << 31}

// forEachStore runs f once per Store implementation, each with a fresh
// store and its own fake clock.
func forEachStore(t *testing.T, f func(t *testing.T, s Store, c *clock)) {
	impls := []struct {
		name string
		make func(t *testing.T, c *clock) Store
	}{
		{"manager", func(t *testing.T, c *clock) Store { return New(c.now) }},
		{"bounded", func(t *testing.T, c *clock) Store { return NewBounded(c.now, wideBounds) }},
		{"spill", func(t *testing.T, c *clock) Store {
			sp, err := NewSpill(c.now, wideBounds, t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { sp.Close() })
			return sp
		}},
	}
	for _, impl := range impls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) {
			c := &clock{t: time.Unix(0, 0)}
			f(t, impl.make(t, c), c)
		})
	}
}

func TestConformanceStoreRetrieveRemove(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		exp := c.t.Add(time.Hour)
		s.Store(item("r", "k1", 2, exp))
		s.Store(item("r", "k1", 1, exp))
		s.Store(item("r", "k2", 1, exp))
		got := s.Retrieve("r", "k1")
		if len(got) != 2 || got[0].InstanceID != 1 || got[1].InstanceID != 2 {
			t.Fatalf("Retrieve = %v, want iids [1 2]", got)
		}
		if !s.Remove("r", "k1", 1) || s.Remove("r", "k1", 1) {
			t.Fatal("Remove must report existence exactly once")
		}
		if s.TotalLen() != 2 || s.Len("r") != 2 {
			t.Fatalf("TotalLen=%d Len=%d, want 2,2", s.TotalLen(), s.Len("r"))
		}
	})
}

func TestConformanceReplaceIsRenew(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		s.Store(item("r", "k", 1, c.t.Add(time.Minute)))
		s.Store(item("r", "k", 1, c.t.Add(10*time.Minute)))
		if s.TotalLen() != 1 {
			t.Fatalf("TotalLen = %d after replace, want 1", s.TotalLen())
		}
		c.t = c.t.Add(5 * time.Minute)
		if swept := s.SweepExpired(); len(swept) != 0 {
			t.Fatalf("sweep removed renewed item: %v", swept)
		}
		got := s.Retrieve("r", "k")
		if len(got) != 1 || !got[0].Expires.Equal(time.Unix(0, 0).Add(10*time.Minute)) {
			t.Fatalf("renew did not extend lifetime: %v", got)
		}
	})
}

func TestConformanceExpiry(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		s.Store(item("r", "a", 1, c.t.Add(time.Minute)))
		s.Store(item("r", "b", 1, c.t.Add(time.Hour)))
		s.Store(&Item{Namespace: "r", ResourceID: "imm", InstanceID: 1, Payload: payload{5}})
		at, ok := s.NextExpiry()
		if !ok || !at.Equal(c.t.Add(time.Minute)) {
			t.Fatalf("NextExpiry = %v,%v", at, ok)
		}
		c.t = c.t.Add(2 * time.Minute)
		if got := s.Retrieve("r", "a"); len(got) != 0 {
			t.Fatalf("expired item returned: %v", got)
		}
		swept := s.SweepExpired()
		if len(swept) != 1 || swept[0].ResourceID != "a" {
			t.Fatalf("sweep = %v, want just a", swept)
		}
		c.t = c.t.Add(1000 * time.Hour)
		s.SweepExpired()
		if len(s.Retrieve("r", "imm")) != 1 {
			t.Fatal("immortal item vanished")
		}
	})
}

func TestConformanceScanOrderDeterministic(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		r := rand.New(rand.NewSource(7))
		var want []string
		for _, rid := range []string{"a", "b", "c", "d"} {
			for iid := int64(0); iid < 3; iid++ {
				want = append(want, fmt.Sprintf("%s/%d", rid, iid))
			}
		}
		perm := r.Perm(len(want))
		for _, i := range perm {
			rid := want[i][:1]
			var iid int64
			fmt.Sscanf(want[i][2:], "%d", &iid)
			s.Store(item("ns", rid, iid, c.t.Add(time.Hour)))
		}
		collect := func() []string {
			var got []string
			s.Scan("ns", func(it *Item) bool {
				got = append(got, fmt.Sprintf("%s/%d", it.ResourceID, it.InstanceID))
				return true
			})
			return got
		}
		first := collect()
		if fmt.Sprint(first) != fmt.Sprint(want) {
			t.Fatalf("scan order = %v, want sorted %v", first, want)
		}
		if second := collect(); fmt.Sprint(second) != fmt.Sprint(first) {
			t.Fatalf("scan order changed between runs: %v vs %v", first, second)
		}
		// ScanAll covers namespaces in sorted order with early stop.
		s.Store(item("aa", "z", 1, c.t.Add(time.Hour)))
		var all []string
		s.ScanAll(func(it *Item) bool {
			all = append(all, it.Namespace+"/"+it.ResourceID)
			return len(all) < 3
		})
		if len(all) != 3 || all[0] != "aa/z" {
			t.Fatalf("ScanAll = %v, want aa first and early stop at 3", all)
		}
	})
}

func TestConformanceUsageExactToWireSize(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		sized := func(ns, rid string, iid int64, size int, exp time.Time) *Item {
			return &Item{Namespace: ns, ResourceID: rid, InstanceID: iid, Payload: payload{size}, Expires: exp}
		}
		a := sized("x", "k", 1, 100, c.t.Add(time.Minute))
		b := sized("x", "k", 2, 50, time.Time{})
		d := sized("y", "k", 1, 30, c.t.Add(time.Hour))
		s.Store(a)
		s.Store(b)
		s.Store(d)
		want := int64(a.WireSize() + b.WireSize() + d.WireSize())
		u := s.Usage()
		if u.Bytes != want {
			t.Fatalf("Usage.Bytes = %d, want %d", u.Bytes, want)
		}
		if u.ByNamespace["x"] != int64(a.WireSize()+b.WireSize()) || u.ByNamespace["y"] != int64(d.WireSize()) {
			t.Fatalf("per-namespace usage = %v", u.ByNamespace)
		}
		// Replace charges the delta, not the sum.
		b2 := sized("x", "k", 2, 500, time.Time{})
		s.Store(b2)
		want += int64(b2.WireSize() - b.WireSize())
		if got := s.Usage().Bytes; got != want {
			t.Fatalf("Usage.Bytes after replace = %d, want %d", got, want)
		}
		// Remove and sweep both release their bytes.
		s.Remove("y", "k", 1)
		want -= int64(d.WireSize())
		c.t = c.t.Add(2 * time.Minute)
		s.SweepExpired()
		want -= int64(a.WireSize())
		u = s.Usage()
		if u.Bytes != want {
			t.Fatalf("Usage.Bytes after remove+sweep = %d, want %d", u.Bytes, want)
		}
		if _, ok := u.ByNamespace["y"]; ok {
			t.Fatal("emptied namespace still charged")
		}
	})
}

func TestConformanceStatsZeroWithoutPressure(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		for i := 0; i < 20; i++ {
			s.Store(item("r", fmt.Sprint(i), 1, c.t.Add(time.Hour)))
		}
		st := s.Stats()
		if st.ItemsEvicted != 0 || st.PutsDropped != 0 || st.ItemsSpilled != 0 || st.SpilledLive != 0 {
			t.Fatalf("unbounded workload produced pressure stats: %+v", st)
		}
	})
}

// TestConformanceProperty model-checks random op sequences (store,
// remove, clock advance + sweep) against a reference map, asserting
// retrieval sets, item counts, and byte accounting stay exact.
func TestConformanceProperty(t *testing.T) {
	forEachStore(t, func(t *testing.T, s Store, c *clock) {
		type modelItem struct {
			size    int
			expires time.Time
		}
		model := map[[2]int]modelItem{}
		start := c.t
		step := 0
		check := func(ops []struct {
			RID, IID, Op, Size uint8
		}) bool {
			for _, op := range ops {
				rid, iid := int(op.RID%6), int64(op.IID%3)
				key := [2]int{rid, int(iid)}
				switch op.Op % 5 {
				case 0, 1: // store with lifetime
					exp := c.t.Add(time.Duration(30+op.Size%60) * time.Minute)
					it := &Item{Namespace: "p", ResourceID: fmt.Sprint(rid), InstanceID: iid,
						Payload: payload{int(op.Size)}, Expires: exp}
					s.Store(it)
					model[key] = modelItem{size: it.WireSize(), expires: exp}
				case 2: // store immortal
					it := &Item{Namespace: "p", ResourceID: fmt.Sprint(rid), InstanceID: iid,
						Payload: payload{int(op.Size)}}
					s.Store(it)
					model[key] = modelItem{size: it.WireSize()}
				case 3: // remove
					want := false
					if _, ok := model[key]; ok {
						want = true
						delete(model, key)
					}
					if s.Remove("p", fmt.Sprint(rid), iid) != want {
						return false
					}
				case 4: // advance and sweep
					c.t = c.t.Add(20 * time.Minute)
					s.SweepExpired()
					for k, mi := range model {
						if !mi.expires.IsZero() && !mi.expires.After(c.t) {
							delete(model, k)
						}
					}
				}
			}
			var wantBytes int64
			for _, mi := range model {
				wantBytes += int64(mi.size)
			}
			if s.Usage().Bytes != wantBytes || s.TotalLen() != len(model) {
				return false
			}
			for rid := 0; rid < 6; rid++ {
				got := s.Retrieve("p", fmt.Sprint(rid))
				live := 0
				for iid := 0; iid < 3; iid++ {
					mi, ok := model[[2]int{rid, iid}]
					if ok && (mi.expires.IsZero() || mi.expires.After(c.t)) {
						live++
					}
				}
				if len(got) != live {
					return false
				}
			}
			step++
			return true
		}
		// One long-lived store per impl across iterations: the model
		// persists, so accounting errors accumulate and surface.
		cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(int64(11)))}
		if err := quick.Check(check, cfg); err != nil {
			t.Fatalf("after %d sequences from %v: %v", step, start, err)
		}
	})
}
