package storage

// Spill adds a disk tier under the Bounded store: quota evictions are
// captured by the evict hook and appended to a log file instead of
// being discarded, and reads transparently merge the memory and disk
// tiers. A renew (re-Store) of a spilled item promotes it back to
// memory. The log is append-only with tombstones for deletes and
// promotions; it compacts in place once dead bytes outweigh live ones.
//
// The spill tier is for real nodes (cmd/pier-node -spill-dir); the
// simulator's byte-charging model (Usage) intentionally counts only
// the memory tier.

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"pier/internal/env"
	"pier/internal/wire"
)

// spillLogName is the log file created inside the spill directory.
const spillLogName = "spill.log"

// compactMinDead is the dead-byte floor below which compaction is not
// worth the rewrite.
const compactMinDead = 64 << 10

// Record kinds in the log.
const (
	recPut       = 0 // a spilled item follows
	recTombstone = 1 // identity-only item follows; deletes a prior put
)

// Spill is the disk-backed Store: a Bounded memory tier whose
// evictions overflow to an append-compact log. Event-loop confined
// like every Store; Close must run before the owning node's transport
// stops.
type Spill struct {
	b   *Bounded
	now func() time.Time
	dir string
	f   *os.File
	end int64 // append offset

	refs      map[string]map[string]map[int64]spillRef
	exp       spillHeap
	refCount  int
	liveBytes int64
	deadBytes int64

	spilledItems int64
	spilledBytes int64
}

// spillRef locates one live spilled item in the log.
type spillRef struct {
	off     int64
	size    int64 // full record size including header
	expires time.Time
}

// NewSpill opens (or creates) the spill log in dir and replays it,
// then stacks the bounded memory tier on top. Items that expired while
// the node was down are dropped during replay.
func NewSpill(now func() time.Time, cfg BoundedConfig, dir string) (*Spill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: spill dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, spillLogName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: spill log: %w", err)
	}
	s := &Spill{
		b:    NewBounded(now, cfg),
		now:  now,
		dir:  dir,
		f:    f,
		refs: make(map[string]map[string]map[int64]spillRef),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	s.b.SetEvictHook(s.spillOut)
	return s, nil
}

// Close flushes and closes the log file. The store must not be used
// afterwards.
func (s *Spill) Close() error { return s.f.Close() }

// Store inserts into the memory tier; a spilled item with the same
// identity is promoted (its disk copy is tombstoned first, so the
// tiers never both hold an identity).
func (s *Spill) Store(it *Item) {
	if ref, ok := s.ref(it.Namespace, it.ResourceID, it.InstanceID); ok {
		s.dropRef(it.Namespace, it.ResourceID, it.InstanceID, ref)
	}
	s.b.Store(it)
}

// Retrieve merges the live items of both tiers, sorted by instanceID.
func (s *Spill) Retrieve(namespace, resourceID string) []*Item {
	out := s.b.Retrieve(namespace, resourceID)
	rids := s.refs[namespace]
	if len(rids[resourceID]) == 0 {
		return out
	}
	now := s.now()
	for _, iid := range env.SortedKeys(rids[resourceID]) {
		ref := rids[resourceID][iid]
		if !ref.expires.IsZero() && !ref.expires.After(now) {
			continue
		}
		if it, err := s.read(ref); err == nil {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].InstanceID < out[j].InstanceID })
	return out
}

// Remove deletes the identity from whichever tier holds it.
func (s *Spill) Remove(namespace, resourceID string, instanceID int64) bool {
	if s.b.Remove(namespace, resourceID, instanceID) {
		return true
	}
	ref, ok := s.ref(namespace, resourceID, instanceID)
	if !ok {
		return false
	}
	s.dropRef(namespace, resourceID, instanceID, ref)
	return true
}

// Scan iterates the namespace's live items of both tiers merged in
// sorted (resourceID, instanceID) order.
func (s *Spill) Scan(namespace string, f func(*Item) bool) {
	s.scanMerged(namespace, f)
}

// ScanAll iterates every live item of both tiers in sorted order.
func (s *Spill) ScanAll(f func(*Item) bool) {
	for _, ns := range s.Namespaces() {
		stopped := false
		s.scanMerged(ns, func(it *Item) bool {
			ok := f(it)
			stopped = !ok
			return ok
		})
		if stopped {
			return
		}
	}
}

// Namespaces lists namespaces with at least one item in either tier.
func (s *Spill) Namespaces() []string {
	seen := map[string]bool{}
	for _, ns := range s.b.Namespaces() {
		seen[ns] = true
	}
	for ns, rids := range s.refs {
		if len(rids) > 0 {
			seen[ns] = true
		}
	}
	out := make([]string, 0, len(seen))
	for ns := range seen {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Len counts the namespace's items across both tiers.
func (s *Spill) Len(namespace string) int {
	n := s.b.Len(namespace)
	for _, insts := range s.refs[namespace] {
		n += len(insts)
	}
	return n
}

// TotalLen counts items across all namespaces and both tiers.
func (s *Spill) TotalLen() int { return s.b.TotalLen() + s.refCount }

// NextExpiry reports the earliest pending expiry in either tier.
func (s *Spill) NextExpiry() (time.Time, bool) {
	at, ok := s.b.NextExpiry()
	for len(s.exp) > 0 {
		e := s.exp[0]
		if ref, live := s.ref(e.ns, e.rid, e.iid); !live || ref.off != e.off {
			heap.Pop(&s.exp) // stale: promoted, removed, or rewritten
			continue
		}
		if !ok || e.at.Before(at) {
			return e.at, true
		}
		break
	}
	return at, ok
}

// SweepExpired removes expired items from both tiers and returns them.
func (s *Spill) SweepExpired() []*Item {
	out := s.b.SweepExpired()
	now := s.now()
	for len(s.exp) > 0 {
		e := s.exp[0]
		ref, live := s.ref(e.ns, e.rid, e.iid)
		if !live || ref.off != e.off {
			heap.Pop(&s.exp)
			continue
		}
		if e.at.After(now) {
			break
		}
		heap.Pop(&s.exp)
		it, err := s.read(ref)
		s.dropRef(e.ns, e.rid, e.iid, ref)
		if err == nil {
			out = append(out, it)
		}
	}
	return out
}

// Usage reports the memory tier only: spilled items are exactly the
// bytes the quota pushed out of memory.
func (s *Spill) Usage() Usage { return s.b.Usage() }

// Stats reports eviction counters plus the spill tier's.
func (s *Spill) Stats() Stats {
	st := s.b.Stats()
	st.ItemsSpilled = s.spilledItems
	st.BytesSpilled = s.spilledBytes
	st.SpilledLive = s.refCount
	return st
}

// OverHighWater implements PressureReporter via the memory tier.
func (s *Spill) OverHighWater(namespace string) bool { return s.b.OverHighWater(namespace) }

// Compact rewrites the log keeping only live records. It runs
// automatically once dead bytes outweigh live ones (and exceed a
// floor); exported for tests and admin tooling.
func (s *Spill) Compact() error {
	tmpPath := filepath.Join(s.dir, spillLogName+".tmp")
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	w := bufio.NewWriter(tmp)
	newRefs := make(map[string]map[string]map[int64]spillRef)
	var off int64
	var fail error
	for _, ns := range env.SortedKeys(s.refs) {
		rids := s.refs[ns]
		for _, rid := range env.SortedKeys(rids) {
			for _, iid := range env.SortedKeys(rids[rid]) {
				ref := rids[rid][iid]
				it, err := s.read(ref)
				if err != nil {
					continue // unreadable record: drop it
				}
				rec, err := encodeRecord(recPut, it)
				if err != nil {
					fail = err
					continue
				}
				if _, err := w.Write(rec); err != nil {
					fail = err
					break
				}
				nr := newRefs[ns]
				if nr == nil {
					nr = make(map[string]map[int64]spillRef)
					newRefs[ns] = nr
				}
				ir := nr[rid]
				if ir == nil {
					ir = make(map[int64]spillRef)
					nr[rid] = ir
				}
				ir[iid] = spillRef{off: off, size: int64(len(rec)), expires: ref.expires}
				off += int64(len(rec))
			}
		}
	}
	if err := w.Flush(); err != nil && fail == nil {
		fail = err
	}
	if err := tmp.Close(); err != nil && fail == nil {
		fail = err
	}
	if fail != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("storage: compact: %w", fail)
	}
	path := filepath.Join(s.dir, spillLogName)
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("storage: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	s.f.Close()
	s.f = f
	s.end = off
	s.liveBytes = off
	s.deadBytes = 0
	s.refs = newRefs
	s.rebuildHeap()
	return nil
}

// spillOut is the Bounded evict hook: the victim moves to disk.
func (s *Spill) spillOut(it *Item) {
	rec, err := encodeRecord(recPut, it)
	if err != nil {
		return // unencodable payload: the item is simply lost
	}
	if _, err := s.f.WriteAt(rec, s.end); err != nil {
		return
	}
	ref := spillRef{off: s.end, size: int64(len(rec)), expires: it.Expires}
	s.end += ref.size
	s.liveBytes += ref.size
	s.putRef(it.Namespace, it.ResourceID, it.InstanceID, ref)
	if !it.Expires.IsZero() {
		heap.Push(&s.exp, spillExp{at: it.Expires, ns: it.Namespace, rid: it.ResourceID, iid: it.InstanceID, off: ref.off})
	}
	s.spilledItems++
	s.spilledBytes += int64(it.WireSize())
	s.maybeCompact()
}

// dropRef tombstones and forgets one spilled record.
func (s *Spill) dropRef(ns, rid string, iid int64, ref spillRef) {
	rec, err := encodeRecord(recTombstone, &Item{Namespace: ns, ResourceID: rid, InstanceID: iid})
	if err == nil {
		if _, err := s.f.WriteAt(rec, s.end); err == nil {
			s.end += int64(len(rec))
			s.deadBytes += int64(len(rec))
		}
	}
	s.deadBytes += ref.size
	s.liveBytes -= ref.size
	rids := s.refs[ns]
	delete(rids[rid], iid)
	if len(rids[rid]) == 0 {
		delete(rids, rid)
	}
	if len(rids) == 0 {
		delete(s.refs, ns)
	}
	s.refCount--
	s.maybeCompact()
}

func (s *Spill) putRef(ns, rid string, iid int64, ref spillRef) {
	rids := s.refs[ns]
	if rids == nil {
		rids = make(map[string]map[int64]spillRef)
		s.refs[ns] = rids
	}
	insts := rids[rid]
	if insts == nil {
		insts = make(map[int64]spillRef)
		rids[rid] = insts
	}
	if old, ok := insts[iid]; ok {
		s.deadBytes += old.size
		s.liveBytes -= old.size
	} else {
		s.refCount++
	}
	insts[iid] = ref
}

func (s *Spill) ref(ns, rid string, iid int64) (spillRef, bool) {
	insts := s.refs[ns][rid]
	if insts == nil {
		return spillRef{}, false
	}
	ref, ok := insts[iid]
	return ref, ok
}

// read loads and decodes the record at ref.
func (s *Spill) read(ref spillRef) (*Item, error) {
	buf := make([]byte, ref.size)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return nil, err
	}
	_, body, err := splitRecord(buf)
	if err != nil {
		return nil, err
	}
	m, err := wire.Unmarshal(body)
	if err != nil {
		return nil, err
	}
	it, ok := m.(*Item)
	if !ok {
		return nil, fmt.Errorf("storage: spill record is not an item")
	}
	return it, nil
}

// load replays the log sequentially, rebuilding refs. Later records
// supersede earlier ones; tombstones delete; items already expired are
// skipped (their bytes counted dead).
func (s *Spill) load() error {
	r := bufio.NewReader(s.f)
	now := s.now()
	var off int64
	for {
		hdr, body, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail (crash mid-append) loses only the final
			// record; everything before it is intact.
			break
		}
		recOff, recSize := off, int64(n)
		off += recSize
		m, err := wire.Unmarshal(body)
		if err != nil {
			s.deadBytes += recSize
			continue
		}
		it, ok := m.(*Item)
		if !ok {
			s.deadBytes += recSize
			continue
		}
		if prev, had := s.ref(it.Namespace, it.ResourceID, it.InstanceID); had {
			s.deadBytes += prev.size
			s.liveBytes -= prev.size
			rids := s.refs[it.Namespace]
			delete(rids[it.ResourceID], it.InstanceID)
			if len(rids[it.ResourceID]) == 0 {
				delete(rids, it.ResourceID)
			}
			if len(rids) == 0 {
				delete(s.refs, it.Namespace)
			}
			s.refCount--
		}
		if hdr == recTombstone || (!it.Expires.IsZero() && !it.Expires.After(now)) {
			s.deadBytes += recSize
			continue
		}
		s.liveBytes += recSize
		s.putRef(it.Namespace, it.ResourceID, it.InstanceID,
			spillRef{off: recOff, size: recSize, expires: it.Expires})
	}
	s.end = off
	s.rebuildHeap()
	return nil
}

func (s *Spill) rebuildHeap() {
	s.exp = s.exp[:0]
	for ns, rids := range s.refs {
		for rid, insts := range rids {
			for iid, ref := range insts {
				if !ref.expires.IsZero() {
					s.exp = append(s.exp, spillExp{at: ref.expires, ns: ns, rid: rid, iid: iid, off: ref.off})
				}
			}
		}
	}
	heap.Init(&s.exp)
}

func (s *Spill) maybeCompact() {
	if s.deadBytes > s.liveBytes && s.deadBytes > compactMinDead {
		s.Compact() // best-effort; the log stays valid on failure
	}
}

// scanMerged iterates the union of both tiers for one namespace in
// sorted (resourceID, instanceID) order.
func (s *Spill) scanMerged(namespace string, f func(*Item) bool) {
	rids := s.refs[namespace]
	if len(rids) == 0 {
		s.b.Scan(namespace, f)
		return
	}
	var items []*Item
	s.b.Scan(namespace, func(it *Item) bool {
		items = append(items, it)
		return true
	})
	now := s.now()
	for _, rid := range env.SortedKeys(rids) {
		for _, iid := range env.SortedKeys(rids[rid]) {
			ref := rids[rid][iid]
			if !ref.expires.IsZero() && !ref.expires.After(now) {
				continue
			}
			if it, err := s.read(ref); err == nil {
				items = append(items, it)
			}
		}
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.ResourceID != b.ResourceID {
			return a.ResourceID < b.ResourceID
		}
		return a.InstanceID < b.InstanceID
	})
	for _, it := range items {
		if !f(it) {
			return
		}
	}
}

// encodeRecord builds one log record: kind byte, uvarint body length,
// wire-encoded item (identity only for tombstones).
func encodeRecord(kind byte, it *Item) ([]byte, error) {
	body, err := wire.Marshal(it)
	if err != nil {
		return nil, err
	}
	rec := append([]byte{kind}, binary.AppendUvarint(nil, uint64(len(body)))...)
	return append(rec, body...), nil
}

// splitRecord parses a full in-memory record into kind and body.
func splitRecord(rec []byte) (byte, []byte, error) {
	if len(rec) < 2 {
		return 0, nil, fmt.Errorf("storage: short spill record")
	}
	kind := rec[0]
	n, used := binary.Uvarint(rec[1:])
	if used <= 0 || int64(len(rec)-1-used) != int64(n) {
		return 0, nil, fmt.Errorf("storage: corrupt spill record")
	}
	return kind, rec[1+used:], nil
}

// readRecord reads one record from the sequential reader, returning
// kind, body, and total bytes consumed.
func readRecord(r *bufio.Reader) (byte, []byte, int, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return 0, nil, 0, err
	}
	if kind != recPut && kind != recTombstone {
		return 0, nil, 0, fmt.Errorf("storage: unknown spill record kind %d", kind)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, 0, err
	}
	if n > 1<<24 {
		return 0, nil, 0, fmt.Errorf("storage: oversized spill record")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, 0, err
	}
	lenBytes := len(binary.AppendUvarint(nil, n))
	return kind, body, 1 + lenBytes + int(n), nil
}

// spillExp orders pending disk-tier expiries.
type spillExp struct {
	at  time.Time
	ns  string
	rid string
	iid int64
	off int64
}

type spillHeap []spillExp

func (h spillHeap) Len() int           { return len(h) }
func (h spillHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h spillHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *spillHeap) Push(x any)        { *h = append(*h, x.(spillExp)) }
func (h *spillHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

var (
	_ Store            = (*Spill)(nil)
	_ PressureReporter = (*Spill)(nil)
)
