package multicast

import (
	"testing"

	"pier/internal/dht/chord"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// Chord has no geometric MulticastRouter refinement, so the flooder
// falls back to full neighbor flooding over successors + fingers; that
// graph is connected, so every node must still be reached exactly once
// at the delivery level.
func TestFloodOverChordReachesAll(t *testing.T) {
	n := 96
	nw := simnet.New(topology.NewFullMeshInfinite(), 3)
	routers := make([]*chord.Router, n)
	flooders := make([]*Flooder, n)
	envs := make([]*simnet.NodeEnv, n)
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		e := nw.AddNode()
		r := chord.New(e, chord.DefaultConfig())
		f := New(e, r)
		f.OnDeliver(func(env.Addr, env.Message) { got[i]++ })
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			if r.HandleMessage(from, m) {
				return
			}
			f.HandleMessage(from, m)
		}))
		routers[i] = r
		flooders[i] = f
		envs[i] = e
	}
	chord.Bootstrap(routers)
	envs[7].Post(func() { flooders[7].Multicast(&note{N: 1}) })
	nw.Drain()
	for i, c := range got {
		if c != 1 {
			t.Fatalf("chord node %d delivered %d times, want 1", i, c)
		}
	}
	// Fingers give high fan-out: expect clearly more messages than the
	// directed CAN flood, but bounded by edges ~ n log n.
	msgs := nw.Stats().Messages
	if msgs < int64(n) {
		t.Fatalf("too few messages (%d) to have covered %d nodes", msgs, n)
	}
}
