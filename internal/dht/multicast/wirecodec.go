package multicast

// Binary wire codec for the flood envelope; the payload is any
// registered message type, encoded recursively.

import (
	"pier/internal/env"
	"pier/internal/wire"
)

const tagFloodMsg byte = 80

func init() {
	wire.Register(tagFloodMsg, &FloodMsg{},
		func(e *wire.Encoder, m env.Message) {
			f := m.(*FloodMsg)
			e.Addr(f.Origin)
			e.Uvarint(f.Seq)
			e.Len(len(f.Hint))
			for _, h := range f.Hint {
				e.Uvarint(uint64(h))
			}
			e.Message(f.Payload)
		},
		func(d *wire.Decoder) env.Message {
			f := &FloodMsg{Origin: d.Addr(), Seq: d.Uvarint()}
			if n := d.Len(); n > 0 {
				f.Hint = make([]uint32, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					f.Hint = append(f.Hint, uint32(d.Uvarint()))
				}
			}
			f.Payload = d.Message()
			if f.Payload == nil && d.Err() == nil {
				// Every flood carries a payload; WireSize and delivery
				// dereference it.
				d.Fail("missing required flood payload")
			}
			return f
		})
}
