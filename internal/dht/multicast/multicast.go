// Package multicast disseminates a message to every node of the overlay.
// PIER uses multicast to distribute query instructions to the nodes
// holding data in a namespace (§3.2.3) and to redistribute OR-ed Bloom
// filters (§4.2). The paper's content-based multicast tech report [18]
// is unavailable; this package implements flooding over the DHT's
// neighbor links with duplicate suppression and, when the router
// supports it (CAN does), directed flooding that delivers close to
// exactly one copy per node.
package multicast

import (
	"encoding/gob"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
)

// FloodMsg carries one multicast payload hop-by-hop over neighbor links.
type FloodMsg struct {
	Origin  env.Addr
	Seq     uint64
	Hint    []uint32 // origin geometry for directed flooding (may be nil)
	Payload env.Message
}

// WireSize implements env.Message.
func (m *FloodMsg) WireSize() int {
	return env.HeaderSize + env.AddrSize + 8 + 4*len(m.Hint) + m.Payload.WireSize()
}

func init() { gob.Register(&FloodMsg{}) }

// Flooder implements multicast for one node.
type Flooder struct {
	env      env.Env
	rt       dht.Router
	robust   bool
	seq      uint64
	seen     map[seenKey]time.Time
	handlers map[int]func(origin env.Addr, payload env.Message)
	nextID   int
}

type seenKey struct {
	origin env.Addr
	seq    uint64
}

// New creates a flooder over the node's router.
func New(e env.Env, rt dht.Router) *Flooder {
	return &Flooder{
		env:      e,
		rt:       rt,
		seen:     make(map[seenKey]time.Time),
		handlers: make(map[int]func(env.Addr, env.Message)),
	}
}

// SetRobust switches between directed flooding (false, the efficient
// default) and full neighbor flooding (true, redundant copies that
// survive undetected node failures).
func (f *Flooder) SetRobust(r bool) { f.robust = r }

// OnDeliver registers a delivery callback and returns an unsubscribe
// function. The callback also fires for this node's own multicasts — a
// multicast reaches all nodes including the sender.
func (f *Flooder) OnDeliver(fn func(origin env.Addr, payload env.Message)) (unsubscribe func()) {
	id := f.nextID
	f.nextID++
	f.handlers[id] = fn
	return func() { delete(f.handlers, id) }
}

// Multicast delivers payload to every reachable node in the overlay.
func (f *Flooder) Multicast(payload env.Message) {
	f.seq++
	m := &FloodMsg{Origin: f.env.Addr(), Seq: f.seq, Payload: payload}
	if mr, ok := f.rt.(dht.MulticastRouter); ok {
		m.Hint = mr.MulticastHint()
	}
	f.seen[seenKey{m.Origin, m.Seq}] = f.env.Now()
	f.deliver(m)
	f.forward(m, env.NilAddr)
}

// HandleMessage consumes FloodMsgs; it returns false for anything else.
func (f *Flooder) HandleMessage(from env.Addr, m env.Message) bool {
	fm, ok := m.(*FloodMsg)
	if !ok {
		return false
	}
	k := seenKey{fm.Origin, fm.Seq}
	if _, dup := f.seen[k]; dup {
		return true
	}
	f.seen[k] = f.env.Now()
	f.gc()
	f.deliver(fm)
	f.forward(fm, from)
	return true
}

func (f *Flooder) deliver(m *FloodMsg) {
	// Handlers may send; invoke them in registration order so delivery
	// side effects are deterministic.
	for _, id := range env.SortedKeys(f.handlers) {
		if fn, ok := f.handlers[id]; ok {
			fn(m.Origin, m.Payload)
		}
	}
}

func (f *Flooder) forward(m *FloodMsg, from env.Addr) {
	var targets []env.Addr
	if mr, ok := f.rt.(dht.MulticastRouter); ok && m.Hint != nil && !f.robust {
		targets = mr.MulticastForward(from, m.Hint)
	} else {
		targets = f.rt.Neighbors()
	}
	for _, a := range targets {
		if a != from && a != m.Origin {
			f.env.Send(a, m)
		}
	}
}

// gc bounds the duplicate-suppression table.
func (f *Flooder) gc() {
	if len(f.seen) < 8192 {
		return
	}
	cutoff := f.env.Now().Add(-10 * time.Minute)
	for k, at := range f.seen {
		if at.Before(cutoff) {
			delete(f.seen, k)
		}
	}
}
