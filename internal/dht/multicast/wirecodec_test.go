package multicast

import (
	"encoding/gob"
	"math/rand"
	"testing"

	"pier/internal/env"
	"pier/internal/wire"
	"pier/internal/wire/wiretest"
)

// floodPayload stands in for the query/filter payloads multicast
// carries; their codecs are tested in their owning packages.
type floodPayload struct{ S string }

func (p *floodPayload) WireSize() int { return env.StringSize(p.S) }

func init() {
	gob.Register(&floodPayload{})
	wire.Register(204, &floodPayload{},
		func(e *wire.Encoder, m env.Message) { e.String(m.(*floodPayload).S) },
		func(d *wire.Decoder) env.Message { return &floodPayload{S: d.String()} })
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 17, 300, []wiretest.Gen{
		{Name: "FloodMsg", Make: func(r *rand.Rand) env.Message {
			f := &FloodMsg{
				Origin:  wiretest.ShortAddr(r),
				Seq:     r.Uint64(),
				Payload: &floodPayload{S: wiretest.Str(r, 24)},
			}
			if n := r.Intn(4); n > 0 {
				f.Hint = make([]uint32, n)
				for i := range f.Hint {
					f.Hint[i] = r.Uint32()
				}
			}
			return f
		}},
	})
}
