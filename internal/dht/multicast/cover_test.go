package multicast

import (
	"fmt"
	"testing"

	"pier/internal/dht/can"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

func TestDirectedFloodCoverageLarge(t *testing.T) {
	for _, n := range []int{512, 2048} {
		for seed := int64(1); seed <= 6; seed++ {
			nw := simnet.New(topology.NewFullMeshInfinite(), seed)
			routers := make([]*can.Router, n)
			envs := make([]*simnet.NodeEnv, n)
			got := make([]int, n)
			flooders := make([]*Flooder, n)
			for i := 0; i < n; i++ {
				i := i
				e := nw.AddNode()
				r := can.New(e, can.DefaultConfig())
				f := New(e, r)
				f.OnDeliver(func(env.Addr, env.Message) { got[i]++ })
				e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
					if r.HandleMessage(from, m) {
						return
					}
					f.HandleMessage(from, m)
				}))
				routers[i] = r
				envs[i] = e
				flooders[i] = f
			}
			can.Bootstrap(routers, seed*7)
			envs[0].Post(func() { flooders[0].Multicast(&note{}) })
			nw.Drain()
			missed, dups := 0, 0
			for _, c := range got {
				if c == 0 {
					missed++
				}
				if c > 1 {
					dups++
				}
			}
			msgs := nw.Stats().Messages
			fmt.Printf("n=%d seed=%d: missed=%d dupdeliver=%d msgs=%d\n", n, seed, missed, dups, msgs)
			if missed > 0 {
				t.Errorf("n=%d seed=%d: %d nodes missed", n, seed, missed)
			}
		}
	}
}
