package multicast

import (
	"fmt"
	"testing"

	"pier/internal/dht/can"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

type note struct{ N int }

func (n *note) WireSize() int { return 100 }

type testNet struct {
	nw       *simnet.Network
	envs     []*simnet.NodeEnv
	flooders []*Flooder
	got      []int // deliveries per node
}

func build(t *testing.T, n int) *testNet {
	t.Helper()
	tn := &testNet{nw: simnet.New(topology.NewFullMeshInfinite(), 9), got: make([]int, n)}
	routers := make([]*can.Router, n)
	for i := 0; i < n; i++ {
		i := i
		e := tn.nw.AddNode()
		r := can.New(e, can.DefaultConfig())
		f := New(e, r)
		f.OnDeliver(func(env.Addr, env.Message) { tn.got[i]++ })
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			if r.HandleMessage(from, m) {
				return
			}
			f.HandleMessage(from, m)
		}))
		routers[i] = r
		tn.envs = append(tn.envs, e)
		tn.flooders = append(tn.flooders, f)
	}
	can.Bootstrap(routers, 33)
	return tn
}

func TestDirectedFloodReachesAllExactlyOnce(t *testing.T) {
	for _, n := range []int{1, 2, 5, 32, 128} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			tn := build(t, n)
			src := n / 2
			tn.envs[src].Post(func() { tn.flooders[src].Multicast(&note{N: 1}) })
			tn.nw.Drain()
			for i, c := range tn.got {
				if c != 1 {
					t.Fatalf("node %d delivered %d times, want 1", i, c)
				}
			}
		})
	}
}

func TestDirectedFloodIsTrafficEfficient(t *testing.T) {
	// Directed flooding should cost ~1 message per node, not ~2d. Allow
	// slack for the half-way rule's antipodal overlaps.
	n := 256
	tn := build(t, n)
	tn.nw.ResetStats()
	tn.envs[0].Post(func() { tn.flooders[0].Multicast(&note{}) })
	tn.nw.Drain()
	msgs := tn.nw.Stats().Messages
	if msgs > int64(2*n) {
		t.Fatalf("flood used %d messages for %d nodes; directed flooding should be near n", msgs, n)
	}
	if msgs < int64(n-1) {
		t.Fatalf("flood used only %d messages; cannot have reached %d nodes", msgs, n)
	}
}

func TestSequentialMulticastsAllDelivered(t *testing.T) {
	tn := build(t, 16)
	for k := 0; k < 5; k++ {
		tn.envs[k].Post(func() { tn.flooders[0].Multicast(&note{N: 1}) })
	}
	tn.nw.Drain()
	for i, c := range tn.got {
		if c != 5 {
			t.Fatalf("node %d saw %d of 5 multicasts", i, c)
		}
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	tn := build(t, 4)
	extra := 0
	var unsub func()
	tn.envs[1].Post(func() {
		unsub = tn.flooders[1].OnDeliver(func(env.Addr, env.Message) { extra++ })
	})
	tn.envs[0].Post(func() { tn.flooders[0].Multicast(&note{}) })
	tn.nw.Drain()
	if extra != 1 {
		t.Fatalf("second handler saw %d deliveries, want 1", extra)
	}
	tn.envs[1].Post(func() { unsub() })
	tn.envs[0].Post(func() { tn.flooders[0].Multicast(&note{}) })
	tn.nw.Drain()
	if extra != 1 {
		t.Fatalf("handler fired after unsubscribe (%d)", extra)
	}
}

func TestFloodSurvivesDeadNodes(t *testing.T) {
	tn := build(t, 64)
	for _, dead := range []int{3, 17, 40} {
		tn.nw.Kill(dead)
	}
	tn.envs[0].Post(func() { tn.flooders[0].Multicast(&note{}) })
	tn.nw.Drain()
	reached := 0
	for i, c := range tn.got {
		switch i {
		case 3, 17, 40:
			if c != 0 {
				t.Fatal("dead node got the multicast")
			}
		default:
			if c >= 1 {
				reached++
			}
		}
	}
	// Directed flooding loses the subtree behind a dead node; the
	// remaining coverage must still be substantial (soft state + query
	// refresh absorb the rest in practice).
	if reached < 50 {
		t.Fatalf("flood reached only %d/61 live nodes around failures", reached)
	}
}

func TestWireSizeIncludesPayloadAndHint(t *testing.T) {
	m := &FloodMsg{Origin: "sim:0", Seq: 1, Hint: []uint32{1, 2, 3, 4}, Payload: &note{}}
	if m.WireSize() <= 100+16 {
		t.Fatalf("WireSize = %d, too small", m.WireSize())
	}
}
