// Package chord implements the Chord DHT on a 64-bit identifier circle:
// successor lists, finger tables, and the periodic stabilization protocol.
// The paper ported PIER to Chord as a validation exercise requiring "a
// fairly minimal integration effort" (§3.2); this package plays the same
// role here by implementing the identical dht.Router interface as CAN.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"sort"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
)

// Config controls a Chord router.
type Config struct {
	// Maintenance enables stabilize / fix-fingers / check-predecessor.
	Maintenance bool
	// StabilizeInterval is the period of the maintenance tasks.
	StabilizeInterval time.Duration
	// SuccessorListLen is the length of the successor list kept for
	// fault tolerance.
	SuccessorListLen int
	// LookupTimeout bounds Lookup latency before failure is reported.
	LookupTimeout time.Duration
	// MaxHops caps routing to break loops during instability.
	MaxHops int
}

// DefaultConfig mirrors the CAN defaults where applicable.
func DefaultConfig() Config {
	return Config{
		StabilizeInterval: 3 * time.Second,
		SuccessorListLen:  8,
		LookupTimeout:     30 * time.Second,
		MaxHops:           512,
	}
}

// IDOf maps a node address onto the identifier circle.
func IDOf(a env.Addr) uint64 {
	h := sha1.Sum([]byte(a))
	return binary.BigEndian.Uint64(h[:8])
}

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, x, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	// Wrapped (or a == b, which denotes the full circle).
	return x > a || x <= b
}

type entry struct {
	addr env.Addr
	id   uint64
}

// Router is a Chord node's routing layer implementing dht.Router.
type Router struct {
	env env.Env
	cfg Config
	id  uint64

	joined   bool
	pred     entry
	hasPred  bool
	succs    []entry // successor list, succs[0] is the successor
	fingers  []entry // fingers[i] = successor(id + 2^i); zero addr = unset
	nextFing int

	locChange []func()
	nonce     uint64
	pending   map[uint64]*pendingLookup
	stopMaint func()

	// stabNonce / succFails / pingPending track the in-flight
	// stabilization probe, consecutive successor failures, and the
	// outstanding predecessor ping.
	stabNonce   uint64
	succFails   int
	pingPending uint64

	// LookupCount and LookupHops accumulate routing statistics.
	LookupCount int64
	LookupHops  int64
}

type pendingLookup struct {
	cb    func(env.Addr)
	timer env.Timer
}

// New creates a Chord router bound to the node environment.
func New(e env.Env, cfg Config) *Router {
	if cfg.StabilizeInterval <= 0 {
		cfg.StabilizeInterval = 3 * time.Second
	}
	if cfg.SuccessorListLen <= 0 {
		cfg.SuccessorListLen = 8
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = 30 * time.Second
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 512
	}
	return &Router{
		env:     e,
		cfg:     cfg,
		id:      IDOf(e.Addr()),
		fingers: make([]entry, 64),
	}
}

// ID returns the node's ring identifier.
func (r *Router) ID() uint64 { return r.id }

// LookupStats reports initiated lookups and total hops, like
// can.Router.LookupStats.
func (r *Router) LookupStats() (count, hops int64) { return r.LookupCount, r.LookupHops }

// EstimateNodes estimates the ring size from successor-list density:
// the list's k entries span a ring arc of length gap, so with uniform
// ids n ≈ k × 2^64 / gap. In rings no larger than the successor list
// the list wraps back to this node, and the ring size is simply the
// number of distinct nodes seen. The statistics catalog feeds this to
// the optimizer's NetStats without any global census.
func (r *Router) EstimateNodes() int {
	if len(r.succs) == 0 {
		return 1
	}
	distinct := map[uint64]bool{r.id: true}
	for _, s := range r.succs {
		if s.id == r.id {
			// Wrapped past ourselves: the list covers the whole ring.
			return len(distinct)
		}
		distinct[s.id] = true
	}
	last := r.succs[len(r.succs)-1]
	gap := last.id - r.id // ring distance, wrap via uint64 arithmetic
	if gap == 0 {
		return len(distinct)
	}
	frac := float64(gap) / (1 << 63) / 2
	n := int(float64(len(r.succs))/frac + 0.5)
	if n < len(distinct) {
		n = len(distinct)
	}
	return n
}

// Ready implements dht.Router.
func (r *Router) Ready() bool { return r.joined }

// Owns implements dht.Router: a Chord node is responsible for keys in
// (predecessor, self].
func (r *Router) Owns(k dht.Key) bool {
	if !r.joined {
		return false
	}
	if !r.hasPred {
		// Single-node network or predecessor unknown: successor(self)
		// semantics make us responsible only if we are our own successor.
		return len(r.succs) == 0 || r.succs[0].id == r.id
	}
	return between(r.pred.id, k.Ring(), r.id)
}

// Neighbors implements dht.Router: successor list, fingers, predecessor.
func (r *Router) Neighbors() []env.Addr {
	seen := map[env.Addr]bool{r.env.Addr(): true}
	var out []env.Addr
	add := func(e entry) {
		if e.addr != env.NilAddr && !seen[e.addr] {
			seen[e.addr] = true
			out = append(out, e.addr)
		}
	}
	for _, s := range r.succs {
		add(s)
	}
	if r.hasPred {
		add(r.pred)
	}
	for _, f := range r.fingers {
		add(f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnLocationMapChange implements dht.Router.
func (r *Router) OnLocationMapChange(f func()) { r.locChange = append(r.locChange, f) }

func (r *Router) fireLocChange() {
	for _, f := range r.locChange {
		f()
	}
}

// Join implements dht.Router.
func (r *Router) Join(landmark env.Addr) {
	if landmark == env.NilAddr {
		r.joined = true
		r.succs = []entry{{r.env.Addr(), r.id}}
		r.startMaintenance()
		r.fireLocChange()
		return
	}
	r.nonce++
	n := r.nonce
	if r.pending == nil {
		r.pending = make(map[uint64]*pendingLookup)
	}
	r.pending[n] = &pendingLookup{
		cb: func(owner env.Addr) {
			if owner == env.NilAddr {
				// Retry the join lookup.
				r.env.After(r.cfg.StabilizeInterval, func() { r.Join(landmark) })
				return
			}
			r.joined = true
			r.succs = []entry{{owner, IDOf(owner)}}
			r.startMaintenance()
			r.stabilize()
		},
		timer: r.env.After(r.cfg.LookupTimeout, func() { r.expire(n) }),
	}
	r.env.Send(landmark, &findSuccMsg{ID: r.id, Origin: r.env.Addr(), Nonce: n})
}

// Leave implements dht.Router: tell the predecessor and successor to
// link up around us. The successor inherits our keys (it becomes
// successor(k) for every k we owned) and is returned for data handoff.
func (r *Router) Leave() env.Addr {
	if !r.joined {
		return env.NilAddr
	}
	heir := env.NilAddr
	if len(r.succs) > 0 && r.succs[0].addr != r.env.Addr() {
		heir = r.succs[0].addr
		pred := entry{}
		if r.hasPred {
			pred = r.pred
		}
		r.env.Send(r.succs[0].addr, &leaveMsg{PredAddr: pred.addr, PredID: pred.id})
		if r.hasPred {
			r.env.Send(r.pred.addr, &leaveMsg{SuccAddr: r.succs[0].addr, SuccID: r.succs[0].id})
		}
	}
	r.joined = false
	r.hasPred = false
	r.succs = nil
	if r.stopMaint != nil {
		r.stopMaint()
		r.stopMaint = nil
	}
	r.fireLocChange()
	return heir
}

// Lookup implements dht.Router.
func (r *Router) Lookup(k dht.Key, cb func(env.Addr)) {
	id := k.Ring()
	r.LookupCount++
	if r.Owns(k) {
		cb(r.env.Addr())
		return
	}
	r.nonce++
	n := r.nonce
	if r.pending == nil {
		r.pending = make(map[uint64]*pendingLookup)
	}
	r.pending[n] = &pendingLookup{
		cb:    cb,
		timer: r.env.After(r.cfg.LookupTimeout, func() { r.expire(n) }),
	}
	r.routeFindSucc(&findSuccMsg{ID: id, Origin: r.env.Addr(), Nonce: n})
}

func (r *Router) expire(n uint64) {
	if pl, ok := r.pending[n]; ok {
		delete(r.pending, n)
		pl.cb(env.NilAddr)
	}
}

// routeFindSucc forwards a find-successor request one hop, or answers it.
func (r *Router) routeFindSucc(m *findSuccMsg) {
	if len(r.succs) == 0 || r.succs[0].id == r.id {
		// We are the only node we know: we are the successor.
		r.env.Send(m.Origin, &findSuccReply{Nonce: m.Nonce, Owner: r.env.Addr(), Hops: m.Hops})
		return
	}
	if between(r.id, m.ID, r.succs[0].id) {
		r.env.Send(m.Origin, &findSuccReply{Nonce: m.Nonce, Owner: r.succs[0].addr, Hops: m.Hops + 1})
		return
	}
	m.Hops++
	if int(m.Hops) > r.cfg.MaxHops {
		return
	}
	next := r.closestPreceding(m.ID)
	if next.addr == env.NilAddr || next.addr == r.env.Addr() {
		next = r.succs[0]
	}
	r.env.Send(next.addr, m)
}

func (r *Router) closestPreceding(id uint64) entry {
	for i := len(r.fingers) - 1; i >= 0; i-- {
		f := r.fingers[i]
		if f.addr != env.NilAddr && f.addr != r.env.Addr() && between(r.id, f.id, id-1) && f.id != id {
			return f
		}
	}
	for i := len(r.succs) - 1; i >= 0; i-- {
		s := r.succs[i]
		if s.addr != r.env.Addr() && between(r.id, s.id, id-1) {
			return s
		}
	}
	if len(r.succs) > 0 {
		return r.succs[0]
	}
	return entry{}
}

// HandleMessage implements dht.Router.
func (r *Router) HandleMessage(from env.Addr, m env.Message) bool {
	switch msg := m.(type) {
	case *findSuccMsg:
		r.routeFindSucc(msg)
	case *findSuccReply:
		if pl, ok := r.pending[msg.Nonce]; ok {
			delete(r.pending, msg.Nonce)
			pl.timer.Stop()
			r.LookupHops += int64(msg.Hops)
			pl.cb(msg.Owner)
		}
	case *getPredMsg:
		reply := &getPredReply{Nonce: msg.Nonce, HasPred: r.hasPred}
		if r.hasPred {
			reply.PredAddr, reply.PredID = r.pred.addr, r.pred.id
		}
		for _, s := range r.succs {
			reply.SuccAddrs = append(reply.SuccAddrs, s.addr)
		}
		r.env.Send(msg.Origin, reply)
	case *getPredReply:
		r.onGetPredReply(msg)
	case *notifyMsg:
		cand := entry{from, msg.ID}
		if !r.hasPred || between(r.pred.id, cand.id, r.id-1) && cand.id != r.id {
			changed := !r.hasPred || r.pred.addr != cand.addr
			r.pred, r.hasPred = cand, true
			if changed {
				r.fireLocChange()
			}
		}
	case *pingMsg:
		r.env.Send(msg.Origin, &pongMsg{Nonce: msg.Nonce})
	case *pongMsg:
		if r.pingPending == msg.Nonce {
			r.pingPending = 0
		}
	case *leaveMsg:
		r.onLeaveMsg(msg)
	default:
		return false
	}
	return true
}

func (r *Router) onLeaveMsg(m *leaveMsg) {
	if m.SuccAddr != env.NilAddr && len(r.succs) > 0 {
		r.succs[0] = entry{m.SuccAddr, m.SuccID}
	}
	if m.PredAddr != env.NilAddr {
		changed := !r.hasPred || r.pred.addr != m.PredAddr
		r.pred, r.hasPred = entry{m.PredAddr, m.PredID}, true
		if changed {
			r.fireLocChange()
		}
	} else if m.SuccAddr == env.NilAddr {
		// Our predecessor left without a replacement.
		r.hasPred = false
		r.fireLocChange()
	}
}

var _ dht.Router = (*Router)(nil)
