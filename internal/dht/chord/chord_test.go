package chord

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

type testNet struct {
	nw      *simnet.Network
	envs    []*simnet.NodeEnv
	routers []*Router
}

func newTestNet(t *testing.T, n int, cfg Config) *testNet {
	t.Helper()
	tn := &testNet{nw: simnet.New(topology.NewFullMeshInfinite(), 5)}
	for i := 0; i < n; i++ {
		e := tn.nw.AddNode()
		r := New(e, cfg)
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			r.HandleMessage(from, m)
		}))
		tn.envs = append(tn.envs, e)
		tn.routers = append(tn.routers, r)
	}
	return tn
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, x, b uint64
		want    bool
	}{
		{1, 5, 10, true},
		{1, 10, 10, true},
		{1, 1, 10, false},
		{1, 11, 10, false},
		{10, 12, 2, true}, // wrapped
		{10, 1, 2, true},
		{10, 5, 2, false},
		{7, 7, 7, true}, // (a,a] wraps the whole circle, ending at a inclusive
		{7, 99, 7, true},
	}
	for _, c := range cases {
		if got := between(c.a, c.x, c.b); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.x, c.b, got, c.want)
		}
	}
}

func TestBootstrapRingExactOwnership(t *testing.T) {
	tn := newTestNet(t, 50, DefaultConfig())
	Bootstrap(tn.routers)
	for trial := 0; trial < 200; trial++ {
		k := dht.KeyOf("t", fmt.Sprint(trial))
		owners := 0
		for _, r := range tn.routers {
			if r.Owns(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %v owned by %d nodes, want 1", k, owners)
		}
	}
}

func TestBootstrapLookupAgreesWithOwns(t *testing.T) {
	tn := newTestNet(t, 64, DefaultConfig())
	Bootstrap(tn.routers)
	for trial := 0; trial < 50; trial++ {
		k := dht.KeyOf("x", fmt.Sprint(trial))
		var want env.Addr
		for i, r := range tn.routers {
			if r.Owns(k) {
				want = tn.envs[i].Addr()
			}
		}
		var got env.Addr
		src := tn.routers[trial%64]
		tn.envs[trial%64].Post(func() { src.Lookup(k, func(a env.Addr) { got = a }) })
		tn.nw.RunFor(time.Minute)
		if got != want {
			t.Fatalf("trial %d: lookup = %v, owner = %v", trial, got, want)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	tn := newTestNet(t, 256, DefaultConfig())
	Bootstrap(tn.routers)
	src := tn.routers[0]
	n := 0
	for trial := 0; trial < 100; trial++ {
		k := dht.KeyOf("h", fmt.Sprint(trial))
		if src.Owns(k) {
			continue
		}
		tn.envs[0].Post(func() { src.Lookup(k, func(env.Addr) {}) })
		n++
	}
	tn.nw.RunFor(10 * time.Minute)
	avg := float64(src.LookupHops) / float64(n)
	// log2(256) = 8; perfect fingers halve distance every hop.
	if avg < 1 || avg > 10 {
		t.Fatalf("average hops = %.2f, want around 4-8", avg)
	}
}

func TestProtocolJoinStabilizes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	tn := newTestNet(t, 8, cfg)
	tn.routers[0].Join(env.NilAddr)
	for i := 1; i < 8; i++ {
		r := tn.routers[i]
		landmark := tn.envs[0].Addr()
		tn.envs[i].Post(func() { r.Join(landmark) })
		tn.nw.RunFor(30 * time.Second)
	}
	// Let stabilization converge.
	tn.nw.RunFor(3 * time.Minute)
	// Ring correctness: exactly one owner per key.
	for trial := 0; trial < 100; trial++ {
		k := dht.KeyOf("j", fmt.Sprint(trial))
		owners := 0
		for _, r := range tn.routers {
			if r.Owns(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("after protocol joins, key %v owned by %d nodes", k, owners)
		}
	}
}

func TestGracefulLeavePatchesRing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	tn := newTestNet(t, 6, cfg)
	Bootstrap(tn.routers)
	leaver := tn.routers[2]
	tn.envs[2].Post(func() { leaver.Leave() })
	tn.nw.Kill(2)
	tn.nw.RunFor(2 * time.Minute)
	for trial := 0; trial < 60; trial++ {
		k := dht.KeyOf("l", fmt.Sprint(trial))
		owners := 0
		for i, r := range tn.routers {
			if i != 2 && r.Owns(k) {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("after leave, key %v owned by %d nodes", k, owners)
		}
	}
}

func TestFailureFailover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	tn := newTestNet(t, 8, cfg)
	Bootstrap(tn.routers)
	tn.nw.RunFor(10 * time.Second)
	tn.nw.Kill(3)
	tn.nw.RunFor(3 * time.Minute)
	// Lookups must succeed, routed around the dead node.
	ok := 0
	for trial := 0; trial < 30; trial++ {
		k := dht.KeyOf("f", fmt.Sprint(trial))
		var got env.Addr
		tn.envs[0].Post(func() { tn.routers[0].Lookup(k, func(a env.Addr) { got = a }) })
		tn.nw.RunFor(2 * time.Minute)
		if got != env.NilAddr && got != tn.envs[3].Addr() {
			ok++
		}
	}
	if ok < 25 {
		t.Fatalf("only %d/30 lookups succeeded after a node failure", ok)
	}
}

func TestIDOfDeterministic(t *testing.T) {
	if IDOf("a") != IDOf("a") || IDOf("a") == IDOf("b") {
		t.Fatal("IDOf must be a deterministic hash")
	}
}

// TestEstimateNodesSmallAndLargeRings: small bootstrapped rings wrap
// the successor list past the node itself and must report the exact
// ring size, not 1; larger rings estimate from successor density.
func TestEstimateNodesSmallAndLargeRings(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		tn := newTestNet(t, n, DefaultConfig())
		Bootstrap(tn.routers)
		for i, r := range tn.routers {
			if got := r.EstimateNodes(); got != n {
				t.Fatalf("n=%d: router %d estimates %d", n, i, got)
			}
		}
	}
	// Density regime: per-node estimates carry ~1/sqrt(k) noise, so
	// assert the median across the ring lands within 2x of the truth
	// and every node at least knows it is not alone.
	const n = 64
	tn := newTestNet(t, n, DefaultConfig())
	Bootstrap(tn.routers)
	ests := make([]int, 0, n)
	for i, r := range tn.routers {
		got := r.EstimateNodes()
		if got <= len(r.succs)/2 {
			t.Fatalf("n=%d: router %d estimates %d despite %d live successors", n, i, got, len(r.succs))
		}
		ests = append(ests, got)
	}
	sort.Ints(ests)
	if med := ests[n/2]; med < n/2 || med > 2*n {
		t.Fatalf("n=%d: median estimate %d, want within 2x", n, med)
	}
}
