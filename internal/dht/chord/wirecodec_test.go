package chord

import (
	"math/rand"
	"testing"

	"pier/internal/env"
	"pier/internal/wire/wiretest"
)

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 13, 300, []wiretest.Gen{
		{Name: "findSuccMsg", Make: func(r *rand.Rand) env.Message {
			return &findSuccMsg{
				ID:     r.Uint64(),
				Origin: wiretest.ShortAddr(r),
				Nonce:  r.Uint64(),
				Hops:   uint16(r.Intn(1 << 16)),
			}
		}},
		{Name: "findSuccReply", Make: func(r *rand.Rand) env.Message {
			return &findSuccReply{
				Nonce: r.Uint64(),
				Owner: wiretest.ShortAddr(r),
				Hops:  uint16(r.Intn(1 << 16)),
			}
		}},
		{Name: "getPredMsg", Make: func(r *rand.Rand) env.Message {
			return &getPredMsg{Origin: wiretest.ShortAddr(r), Nonce: r.Uint64()}
		}},
		{Name: "getPredReply", Make: func(r *rand.Rand) env.Message {
			g := &getPredReply{
				Nonce:   r.Uint64(),
				HasPred: r.Intn(2) == 0,
				PredID:  r.Uint64(),
			}
			if g.HasPred {
				g.PredAddr = wiretest.ShortAddr(r)
			}
			if n := r.Intn(5); n > 0 {
				g.SuccAddrs = make([]env.Addr, n)
				for i := range g.SuccAddrs {
					g.SuccAddrs[i] = wiretest.ShortAddr(r)
				}
			}
			return g
		}},
		{Name: "notifyMsg", Make: func(r *rand.Rand) env.Message {
			return &notifyMsg{ID: r.Uint64()}
		}},
		{Name: "pingMsg", Make: func(r *rand.Rand) env.Message {
			return &pingMsg{Origin: wiretest.ShortAddr(r), Nonce: r.Uint64()}
		}},
		{Name: "pongMsg", Make: func(r *rand.Rand) env.Message {
			return &pongMsg{Nonce: r.Uint64()}
		}},
		{Name: "leaveMsg", Make: func(r *rand.Rand) env.Message {
			return &leaveMsg{
				SuccAddr: wiretest.ShortAddr(r),
				SuccID:   r.Uint64(),
				PredAddr: wiretest.ShortAddr(r),
				PredID:   r.Uint64(),
			}
		}},
	})
}
