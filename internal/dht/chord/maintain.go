package chord

import (
	"sort"

	"pier/internal/env"
)

// startMaintenance begins the periodic stabilize / fix-fingers /
// check-predecessor cycle if enabled.
func (r *Router) startMaintenance() {
	if !r.cfg.Maintenance || r.stopMaint != nil {
		return
	}
	r.stopMaint = env.Every(r.env, r.cfg.StabilizeInterval, func() {
		r.stabilize()
		r.fixFinger()
		r.checkPredecessor()
	})
}

// stabilize asks the successor for its predecessor and successor list,
// adopting a closer successor if one appeared, then notifies the
// successor of our existence.
func (r *Router) stabilize() {
	if len(r.succs) == 0 {
		return
	}
	succ := r.succs[0]
	if succ.addr == r.env.Addr() {
		// We are our own successor. If someone has notified us (set our
		// predecessor), adopt it as successor so a two-node ring forms;
		// otherwise there is nothing to stabilize against.
		if r.hasPred && r.pred.addr != r.env.Addr() {
			r.succs[0] = r.pred
			succ = r.pred
		} else {
			return
		}
	}
	r.nonce++
	n := r.nonce
	if r.pending == nil {
		r.pending = make(map[uint64]*pendingLookup)
	}
	r.pending[n] = &pendingLookup{
		cb:    func(env.Addr) {},
		timer: r.env.After(r.cfg.StabilizeInterval, func() { r.succTimeout(n) }),
	}
	r.stabNonce = n
	r.env.Send(succ.addr, &getPredMsg{Origin: r.env.Addr(), Nonce: n})
}

// succTimeout fires when the successor did not answer a stabilize probe:
// fail over to the next live entry in the successor list.
func (r *Router) succTimeout(n uint64) {
	if _, ok := r.pending[n]; !ok {
		return
	}
	delete(r.pending, n)
	if n != r.stabNonce {
		return
	}
	r.succFails++
	if r.succFails < 2 {
		return
	}
	r.succFails = 0
	if len(r.succs) > 1 {
		r.succs = r.succs[1:]
	} else {
		r.succs = []entry{{r.env.Addr(), r.id}}
	}
}

func (r *Router) onGetPredReply(m *getPredReply) {
	if pl, ok := r.pending[m.Nonce]; ok {
		pl.timer.Stop()
		delete(r.pending, m.Nonce)
	}
	r.succFails = 0
	if len(r.succs) == 0 {
		return
	}
	succ := r.succs[0]
	if m.HasPred && m.PredAddr != r.env.Addr() && between(r.id, m.PredID, succ.id-1) && m.PredID != succ.id {
		succ = entry{m.PredAddr, m.PredID}
	}
	// Rebuild the successor list: our successor followed by its list.
	list := []entry{succ}
	for _, a := range m.SuccAddrs {
		if a == r.env.Addr() || a == succ.addr {
			continue
		}
		list = append(list, entry{a, IDOf(a)})
		if len(list) >= r.cfg.SuccessorListLen {
			break
		}
	}
	r.succs = list
	r.env.Send(succ.addr, &notifyMsg{ID: r.id})
}

// fixFinger refreshes one finger per cycle, round-robin.
func (r *Router) fixFinger() {
	i := r.nextFing
	r.nextFing = (r.nextFing + 1) % len(r.fingers)
	target := r.id + (uint64(1) << uint(i))
	r.nonce++
	n := r.nonce
	r.pending[n] = &pendingLookup{
		cb: func(owner env.Addr) {
			if owner != env.NilAddr {
				r.fingers[i] = entry{owner, IDOf(owner)}
			}
		},
		timer: r.env.After(r.cfg.LookupTimeout, func() { r.expire(n) }),
	}
	r.routeFindSucc(&findSuccMsg{ID: target, Origin: r.env.Addr(), Nonce: n})
}

// checkPredecessor pings the predecessor; an unanswered ping clears it so
// a notify can install a live one.
func (r *Router) checkPredecessor() {
	if !r.hasPred || r.pred.addr == r.env.Addr() {
		return
	}
	if r.pingPending != 0 {
		// Previous ping unanswered for a full cycle.
		r.pingPending = 0
		r.hasPred = false
		r.fireLocChange()
		return
	}
	r.nonce++
	r.pingPending = r.nonce
	r.env.Send(r.pred.addr, &pingMsg{Origin: r.env.Addr(), Nonce: r.nonce})
}

// Bootstrap wires a stable Chord ring directly: sorted identifiers,
// exact successors/predecessors/successor lists, and perfect finger
// tables. Like can.Bootstrap, it lets large simulations start from the
// stabilized state the paper measures from (§5.2).
func Bootstrap(routers []*Router) {
	n := len(routers)
	if n == 0 {
		return
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return routers[idx[a]].id < routers[idx[b]].id })

	ids := make([]uint64, n)
	for i, j := range idx {
		ids[i] = routers[j].id
	}
	// succOf returns the ring position of successor(target).
	succOf := func(target uint64) int {
		lo := sort.Search(n, func(i int) bool { return ids[i] >= target })
		if lo == n {
			lo = 0
		}
		return lo
	}
	for pos, j := range idx {
		r := routers[j]
		r.joined = true
		next := idx[(pos+1)%n]
		prev := idx[(pos-1+n)%n]
		r.pred = entry{routers[prev].env.Addr(), routers[prev].id}
		r.hasPred = n > 1
		r.succs = r.succs[:0]
		for k := 1; k <= r.cfg.SuccessorListLen && k < n+1; k++ {
			s := idx[(pos+k)%n]
			r.succs = append(r.succs, entry{routers[s].env.Addr(), routers[s].id})
			if len(r.succs) >= r.cfg.SuccessorListLen {
				break
			}
		}
		if len(r.succs) == 0 {
			r.succs = []entry{{r.env.Addr(), r.id}}
		}
		for i := range r.fingers {
			s := idx[succOf(r.id+(uint64(1)<<uint(i)))]
			r.fingers[i] = entry{routers[s].env.Addr(), routers[s].id}
		}
		_ = next
		r.startMaintenance()
		r.fireLocChange()
	}
}
