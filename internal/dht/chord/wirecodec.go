package chord

// Binary wire codecs for the Chord control protocol, mirroring the
// gob.Register calls in messages.go.

import (
	"pier/internal/env"
	"pier/internal/wire"
)

const (
	tagFindSuccMsg byte = 64 + iota
	tagFindSuccReply
	tagGetPredMsg
	tagGetPredReply
	tagNotifyMsg
	tagPingMsg
	tagPongMsg
	tagLeaveMsg
)

func init() {
	wire.Register(tagFindSuccMsg, &findSuccMsg{},
		func(e *wire.Encoder, m env.Message) {
			f := m.(*findSuccMsg)
			e.Uvarint(f.ID)
			e.Addr(f.Origin)
			e.Uvarint(f.Nonce)
			e.Uvarint(uint64(f.Hops))
		},
		func(d *wire.Decoder) env.Message {
			return &findSuccMsg{
				ID:     d.Uvarint(),
				Origin: d.Addr(),
				Nonce:  d.Uvarint(),
				Hops:   uint16(d.Uvarint()),
			}
		})

	wire.Register(tagFindSuccReply, &findSuccReply{},
		func(e *wire.Encoder, m env.Message) {
			f := m.(*findSuccReply)
			e.Uvarint(f.Nonce)
			e.Addr(f.Owner)
			e.Uvarint(uint64(f.Hops))
		},
		func(d *wire.Decoder) env.Message {
			return &findSuccReply{
				Nonce: d.Uvarint(),
				Owner: d.Addr(),
				Hops:  uint16(d.Uvarint()),
			}
		})

	wire.Register(tagGetPredMsg, &getPredMsg{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getPredMsg)
			e.Addr(g.Origin)
			e.Uvarint(g.Nonce)
		},
		func(d *wire.Decoder) env.Message {
			return &getPredMsg{Origin: d.Addr(), Nonce: d.Uvarint()}
		})

	wire.Register(tagGetPredReply, &getPredReply{},
		func(e *wire.Encoder, m env.Message) {
			g := m.(*getPredReply)
			e.Uvarint(g.Nonce)
			e.Bool(g.HasPred)
			e.Addr(g.PredAddr)
			e.Uvarint(g.PredID)
			e.Len(len(g.SuccAddrs))
			for _, a := range g.SuccAddrs {
				e.Addr(a)
			}
		},
		func(d *wire.Decoder) env.Message {
			g := &getPredReply{
				Nonce:    d.Uvarint(),
				HasPred:  d.Bool(),
				PredAddr: d.Addr(),
				PredID:   d.Uvarint(),
			}
			if n := d.Len(); n > 0 {
				g.SuccAddrs = make([]env.Addr, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					g.SuccAddrs = append(g.SuccAddrs, d.Addr())
				}
			}
			return g
		})

	wire.Register(tagNotifyMsg, &notifyMsg{},
		func(e *wire.Encoder, m env.Message) { e.Uvarint(m.(*notifyMsg).ID) },
		func(d *wire.Decoder) env.Message { return &notifyMsg{ID: d.Uvarint()} })

	wire.Register(tagPingMsg, &pingMsg{},
		func(e *wire.Encoder, m env.Message) {
			p := m.(*pingMsg)
			e.Addr(p.Origin)
			e.Uvarint(p.Nonce)
		},
		func(d *wire.Decoder) env.Message {
			return &pingMsg{Origin: d.Addr(), Nonce: d.Uvarint()}
		})

	wire.Register(tagPongMsg, &pongMsg{},
		func(e *wire.Encoder, m env.Message) { e.Uvarint(m.(*pongMsg).Nonce) },
		func(d *wire.Decoder) env.Message { return &pongMsg{Nonce: d.Uvarint()} })

	wire.Register(tagLeaveMsg, &leaveMsg{},
		func(e *wire.Encoder, m env.Message) {
			l := m.(*leaveMsg)
			e.Addr(l.SuccAddr)
			e.Uvarint(l.SuccID)
			e.Addr(l.PredAddr)
			e.Uvarint(l.PredID)
		},
		func(d *wire.Decoder) env.Message {
			return &leaveMsg{
				SuccAddr: d.Addr(),
				SuccID:   d.Uvarint(),
				PredAddr: d.Addr(),
				PredID:   d.Uvarint(),
			}
		})
}
