package chord

import (
	"encoding/gob"

	"pier/internal/env"
)

func init() {
	gob.Register(&findSuccMsg{})
	gob.Register(&findSuccReply{})
	gob.Register(&getPredMsg{})
	gob.Register(&getPredReply{})
	gob.Register(&notifyMsg{})
	gob.Register(&pingMsg{})
	gob.Register(&pongMsg{})
	gob.Register(&leaveMsg{})
}

// findSuccMsg is routed around the ring toward successor(ID).
type findSuccMsg struct {
	ID     uint64
	Origin env.Addr
	Nonce  uint64
	Hops   uint16
}

func (m *findSuccMsg) WireSize() int { return env.HeaderSize + 8 + env.AddrSize + 10 }

// findSuccReply answers a findSuccMsg directly to the origin.
type findSuccReply struct {
	Nonce uint64
	Owner env.Addr
	Hops  uint16
}

func (m *findSuccReply) WireSize() int { return env.HeaderSize + 8 + env.AddrSize + 2 }

// getPredMsg asks a node for its predecessor and successor list.
type getPredMsg struct {
	Origin env.Addr
	Nonce  uint64
}

func (m *getPredMsg) WireSize() int { return env.HeaderSize + env.AddrSize + 8 }

type getPredReply struct {
	Nonce     uint64
	HasPred   bool
	PredAddr  env.Addr
	PredID    uint64
	SuccAddrs []env.Addr
}

func (m *getPredReply) WireSize() int {
	return env.HeaderSize + 17 + env.AddrSize*(1+len(m.SuccAddrs))
}

// notifyMsg tells the receiver the sender believes it is the receiver's
// predecessor.
type notifyMsg struct{ ID uint64 }

func (m *notifyMsg) WireSize() int { return env.HeaderSize + 8 }

type pingMsg struct {
	Origin env.Addr
	Nonce  uint64
}

func (m *pingMsg) WireSize() int { return env.HeaderSize + env.AddrSize + 8 }

type pongMsg struct{ Nonce uint64 }

func (m *pongMsg) WireSize() int { return env.HeaderSize + 8 }

// leaveMsg patches the ring around a gracefully departing node.
type leaveMsg struct {
	SuccAddr env.Addr
	SuccID   uint64
	PredAddr env.Addr
	PredID   uint64
}

func (m *leaveMsg) WireSize() int { return env.HeaderSize + 2*(env.AddrSize+8) }
