// Package can implements the Content Addressable Network DHT (§3.1.1):
// a logical d-dimensional Cartesian coordinate space on a torus,
// partitioned into hyper-rectangular zones, one owner per zone, with
// greedy multi-hop routing toward the point a key hashes to.
package can

import (
	"fmt"
	"math"
)

// Span is the exclusive upper bound of every dimension: coordinates are
// uint32 values hashed from keys, so the space is [0, 2^32)^d.
const Span = uint64(1) << 32

// Zone is an axis-aligned hyper-rectangle [Lo[i], Hi[i]) per dimension.
// Zones are produced by recursively halving the root zone, so they never
// wrap around the torus; only adjacency and distance are torus-aware.
type Zone struct {
	Lo, Hi []uint64
	// Depth is the number of halvings from the root zone; it determines
	// the zone's volume (2^-Depth of the space) and which dimension is
	// split next (Depth mod d, cycling dimensions as in the CAN paper).
	Depth int
}

// RootZone returns the zone covering the entire d-dimensional space.
func RootZone(dims int) Zone {
	z := Zone{Lo: make([]uint64, dims), Hi: make([]uint64, dims)}
	for i := range z.Hi {
		z.Hi[i] = Span
	}
	return z
}

// Clone returns a deep copy.
func (z Zone) Clone() Zone {
	c := Zone{Lo: append([]uint64(nil), z.Lo...), Hi: append([]uint64(nil), z.Hi...), Depth: z.Depth}
	return c
}

// Dims returns the dimensionality of the zone.
func (z Zone) Dims() int { return len(z.Lo) }

// Contains reports whether point p falls inside the zone.
func (z Zone) Contains(p []uint32) bool {
	for i := range z.Lo {
		v := uint64(p[i])
		if v < z.Lo[i] || v >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Split halves the zone along the dimension given by Depth mod d and
// returns the two halves; lower covers [Lo, mid), upper covers [mid, Hi).
func (z Zone) Split() (lower, upper Zone) {
	dim := z.Depth % z.Dims()
	mid := (z.Lo[dim] + z.Hi[dim]) / 2
	lower, upper = z.Clone(), z.Clone()
	lower.Hi[dim] = mid
	upper.Lo[dim] = mid
	lower.Depth++
	upper.Depth++
	return lower, upper
}

// Splittable reports whether the zone can still be halved (each side has
// at least one coordinate).
func (z Zone) Splittable() bool {
	dim := z.Depth % z.Dims()
	return z.Hi[dim]-z.Lo[dim] >= 2
}

// Volume returns the zone's fraction of the total space.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= float64(z.Hi[i]-z.Lo[i]) / float64(Span)
	}
	return v
}

// overlap1 reports whether the intervals [alo,ahi) and [blo,bhi) share
// interior points. Whole-span intervals overlap everything.
func overlap1(alo, ahi, blo, bhi uint64) bool {
	return alo < bhi && blo < ahi
}

// abut1 reports whether the intervals touch end-to-start on the torus.
func abut1(alo, ahi, blo, bhi uint64) bool {
	if ahi-alo == Span || bhi-blo == Span {
		return false // a whole-span interval overlaps rather than abuts
	}
	return ahi == blo || bhi == alo ||
		(ahi == Span && blo == 0) || (bhi == Span && alo == 0)
}

// Adjacent reports whether two zones are CAN neighbors: their spans
// overlap along d-1 dimensions and abut along exactly one (§3.1.1: "Two
// nodes are neighbors if their zones share a hyper-plane with dimension
// d-1").
func Adjacent(a, b Zone) bool {
	abuts := 0
	for i := range a.Lo {
		switch {
		case abut1(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]):
			abuts++
			if abuts > 1 {
				return false
			}
		case overlap1(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i]):
			// contributes a shared extent in this dimension
		default:
			return false // disjoint and not touching: no shared face
		}
	}
	return abuts == 1
}

// circDist is the torus distance between two coordinates.
func circDist(a, b uint64) uint64 {
	var d uint64
	if a > b {
		d = a - b
	} else {
		d = b - a
	}
	if d > Span/2 {
		d = Span - d
	}
	return d
}

// DistanceSq returns the squared torus distance from point p to the
// nearest point of the zone; zero when the zone contains p. Greedy
// routing forwards to the neighbor minimizing this (§3.1.1: "forwarding
// the message along a path that approximates the straight line in the
// coordinate space").
func (z Zone) DistanceSq(p []uint32) float64 {
	var sum float64
	for i := range z.Lo {
		v := uint64(p[i])
		if v >= z.Lo[i] && v < z.Hi[i] {
			continue
		}
		d := circDist(v, z.Lo[i])
		if dh := circDist(v, z.Hi[i]-1); dh < d {
			d = dh
		}
		f := float64(d)
		sum += f * f
	}
	return sum
}

// String renders the zone like the paper's Figure 2 captions.
func (z Zone) String() string {
	return fmt.Sprintf("(%v,%v)@%d", z.Lo, z.Hi, z.Depth)
}

// TotalVolume sums the volumes of a set of zones.
func TotalVolume(zones []Zone) float64 {
	v := 0.0
	for _, z := range zones {
		v += z.Volume()
	}
	return v
}

// AnyAdjacent reports whether any pair across the two zone sets is
// adjacent, or any zone of one set contains a point owned by the other —
// used to decide whether two multi-zone nodes are neighbors.
func AnyAdjacent(a, b []Zone) bool {
	for _, za := range a {
		for _, zb := range b {
			if Adjacent(za, zb) {
				return true
			}
		}
	}
	return false
}

// MinDistanceSq returns the smallest DistanceSq from p to any zone of the
// set; +Inf for an empty set.
func MinDistanceSq(zones []Zone, p []uint32) float64 {
	best := math.Inf(1)
	for _, z := range zones {
		if d := z.DistanceSq(p); d < best {
			best = d
			if best == 0 {
				return 0
			}
		}
	}
	return best
}
