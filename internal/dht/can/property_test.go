package can

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// TestProtocolJoinInvariantsProperty drives the full join protocol with
// random landmark choices and checks the CAN invariants afterwards:
// zones tile the space, links are symmetric, every key has exactly one
// owner, and lookups from random sources find it.
func TestProtocolJoinInvariantsProperty(t *testing.T) {
	check := func(seed int64, size uint8) bool {
		n := 3 + int(size%14)
		nw := simnet.New(topology.NewFullMeshInfinite(), seed)
		rng := rand.New(rand.NewSource(seed))
		var envs []*simnet.NodeEnv
		var routers []*Router
		for i := 0; i < n; i++ {
			e := nw.AddNode()
			r := New(e, DefaultConfig())
			e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
				r.HandleMessage(from, m)
			}))
			envs = append(envs, e)
			routers = append(routers, r)
		}
		routers[0].Join(env.NilAddr)
		for i := 1; i < n; i++ {
			i := i
			landmark := envs[rng.Intn(i)].Addr() // any existing node works
			envs[i].Post(func() { routers[i].Join(landmark) })
			nw.RunFor(2 * time.Minute)
		}
		// Invariant: full coverage.
		vol := 0.0
		for _, r := range routers {
			vol += TotalVolume(r.Zones())
		}
		if vol < 0.999999 || vol > 1.000001 {
			return false
		}
		// Invariant: link symmetry.
		byAddr := map[env.Addr]*Router{}
		for i, r := range routers {
			byAddr[envs[i].Addr()] = r
		}
		for i, r := range routers {
			self := envs[i].Addr()
			for _, nb := range r.Neighbors() {
				back := false
				for _, x := range byAddr[nb].Neighbors() {
					if x == self {
						back = true
					}
				}
				if !back {
					return false
				}
			}
		}
		// Invariant: single ownership + routable.
		for trial := 0; trial < 10; trial++ {
			k := dht.KeyOf("p", fmt.Sprint(seed, trial))
			owners := 0
			var owner env.Addr
			for i, r := range routers {
				if r.Owns(k) {
					owners++
					owner = envs[i].Addr()
				}
			}
			if owners != 1 {
				return false
			}
			src := rng.Intn(n)
			var got env.Addr
			envs[src].Post(func() { routers[src].Lookup(k, func(a env.Addr) { got = a }) })
			nw.RunFor(2 * time.Minute)
			if got != owner {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBootstrapInvariantsProperty checks the fast-construction path at
// random sizes and seeds.
func TestBootstrapInvariantsProperty(t *testing.T) {
	check := func(seed int64, size uint16) bool {
		n := 1 + int(size%300)
		nw := simnet.New(topology.NewFullMeshInfinite(), seed)
		routers := make([]*Router, n)
		for i := range routers {
			e := nw.AddNode()
			r := New(e, DefaultConfig())
			e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { r.HandleMessage(from, m) }))
			routers[i] = r
		}
		sm := Bootstrap(routers, seed)
		vol := 0.0
		for _, r := range routers {
			vol += TotalVolume(r.Zones())
		}
		if vol < 0.999999 || vol > 1.000001 {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			k := dht.KeyOf("b", fmt.Sprint(trial))
			want := sm.Owner(k)
			for i, r := range routers {
				if r.Owns(k) != (i == want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBootstrapNeighborsMatchBruteForce pins the split-tree adjacency
// search against the definitional check: after Bootstrap, node j is in
// node i's neighbor table exactly when some zone of i is Adjacent to
// some zone of j.
func TestBootstrapNeighborsMatchBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, n := range []int{2, 17, 64, 300} {
			nw := simnet.New(topology.NewFullMeshInfinite(), seed)
			routers := make([]*Router, n)
			for i := range routers {
				e := nw.AddNode()
				r := New(e, DefaultConfig())
				e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { r.HandleMessage(from, m) }))
				routers[i] = r
			}
			Bootstrap(routers, seed)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					want := AnyAdjacent(routers[i].zones, routers[j].zones)
					_, gotIJ := routers[i].neighbors[routers[j].env.Addr()]
					_, gotJI := routers[j].neighbors[routers[i].env.Addr()]
					if gotIJ != want || gotJI != want {
						t.Fatalf("seed=%d n=%d pair (%d,%d): adjacency %v but tables say %v/%v",
							seed, n, i, j, want, gotIJ, gotJI)
					}
				}
			}
		}
	}
}
