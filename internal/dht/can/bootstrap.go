package can

import (
	"math/rand"

	"pier/internal/dht"
	"pier/internal/env"
)

// SpaceMap is an oracle over a bootstrapped CAN: a binary tree of zone
// splits that resolves any key to the owning node index in O(depth).
// The simulation harness uses it to bulk-load tables directly into the
// responsible nodes, matching the paper's setup: "All measurements ...
// are performed after the CAN routing stabilizes, and tables R and S are
// loaded into the DHT" (§5.2).
type SpaceMap struct {
	root *treeNode
	dims int
}

type treeNode struct {
	zone  Zone
	owner int // leaf: node index
	dim   int
	mid   uint64
	lo    *treeNode // child covering coordinate < mid along dim
	hi    *treeNode
}

// Bootstrap constructs a stable n-node CAN directly, bypassing the join
// protocol: node 0 starts with the whole space, and each subsequent node
// joins at a random point using the same split rule the protocol applies.
// Routers receive their zones and complete neighbor tables, and are
// marked joined. Returns the owner oracle.
func Bootstrap(routers []*Router, seed int64) *SpaceMap {
	if len(routers) == 0 {
		return nil
	}
	dims := routers[0].cfg.Dims
	rng := rand.New(rand.NewSource(seed))
	sm := &SpaceMap{dims: dims, root: &treeNode{zone: RootZone(dims), owner: 0}}
	leaves := make([]*treeNode, 1, len(routers))
	leaves[0] = sm.root

	point := make([]uint32, dims)
	for i := 1; i < len(routers); i++ {
		for j := range point {
			point[j] = rng.Uint32()
		}
		leaf := sm.locate(point)
		for !leaf.zone.Splittable() {
			// Astronomically unlikely with 32-bit coordinates; pick again.
			for j := range point {
				point[j] = rng.Uint32()
			}
			leaf = sm.locate(point)
		}
		lower, upper := leaf.zone.Split()
		dim := leaf.zone.Depth % dims
		leaf.dim, leaf.mid = dim, lower.Hi[dim]
		lo := &treeNode{zone: lower, owner: leaf.owner}
		hi := &treeNode{zone: upper, owner: leaf.owner}
		if lower.Contains(point) {
			lo.owner = i
		} else {
			hi.owner = i
		}
		leaf.lo, leaf.hi = lo, hi
		leaf.owner = -1
		leaves = append(leaves, lo, hi)
	}

	// Collect final leaves per node and build neighbor tables.
	zones := make([][]Zone, len(routers))
	finals := leaves[:0]
	for _, l := range leaves {
		if l.lo == nil {
			finals = append(finals, l)
			zones[l.owner] = append(zones[l.owner], l.zone)
		}
	}
	// Find adjacent leaf pairs by searching the split tree instead of
	// testing all O(n²) leaf pairs (5×10⁹ Adjacent calls at n=100k).
	// An internal node's zone is a superset of every leaf below it, so
	// a subtree can contain a neighbor of q only if its box overlaps or
	// abuts q's span in every dimension — the same per-dimension test
	// Adjacent applies, relaxed to the ancestor box. Each query visits
	// the O(depth) path plus the leaves touching q's faces, making the
	// whole pass O(n·(log n + neighbors)).
	type nbr struct{ a, b int }
	adj := make(map[nbr]bool)
	couldTouch := func(box, q Zone) bool {
		for i := range q.Lo {
			if !overlap1(box.Lo[i], box.Hi[i], q.Lo[i], q.Hi[i]) &&
				!abut1(box.Lo[i], box.Hi[i], q.Lo[i], q.Hi[i]) {
				return false
			}
		}
		return true
	}
	stack := make([]*treeNode, 0, 64)
	for _, q := range finals {
		stack = append(stack[:0], sm.root)
		for len(stack) > 0 {
			nd := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if !couldTouch(nd.zone, q.zone) {
				continue
			}
			if nd.lo != nil {
				stack = append(stack, nd.lo, nd.hi)
				continue
			}
			if nd.owner == q.owner || !Adjacent(nd.zone, q.zone) {
				continue
			}
			x, y := nd.owner, q.owner
			if x > y {
				x, y = y, x
			}
			adj[nbr{x, y}] = true
		}
	}
	now := routers[0].env.Now()
	for i, r := range routers {
		r.zones = cloneZones(zones[i])
		r.joined = true
		r.neighbors = make(map[env.Addr]*neighborInfo)
	}
	for e := range adj {
		ra, rb := routers[e.a], routers[e.b]
		ra.neighbors[rb.env.Addr()] = &neighborInfo{zones: rb.zones, lastHeard: now}
		rb.neighbors[ra.env.Addr()] = &neighborInfo{zones: ra.zones, lastHeard: now}
	}
	for _, r := range routers {
		r.startMaintenance()
		r.fireLocChange()
	}
	return sm
}

func (m *SpaceMap) locate(p []uint32) *treeNode {
	n := m.root
	for n.lo != nil {
		if uint64(p[n.dim]) < n.mid {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n
}

// Owner returns the index of the node responsible for k.
func (m *SpaceMap) Owner(k dht.Key) int { return m.locate(k.Point(m.dims)).owner }

// OwnerOf returns the index of the node responsible for
// (namespace, resourceID).
func (m *SpaceMap) OwnerOf(namespace, resourceID string) int {
	return m.Owner(dht.KeyOf(namespace, resourceID))
}
