package can

import (
	"math/rand"
	"testing"

	"pier/internal/env"
	"pier/internal/wire/wiretest"
)

func randZone(r *rand.Rand) Zone {
	z := RootZone(1 + r.Intn(4))
	for z.Splittable() && r.Intn(3) > 0 {
		lower, upper := z.Split()
		if r.Intn(2) == 0 {
			z = lower
		} else {
			z = upper
		}
	}
	return z
}

func randZones(r *rand.Rand, dims int) []Zone {
	n := 1 + r.Intn(3)
	zs := make([]Zone, n)
	for i := range zs {
		z := RootZone(dims)
		for z.Splittable() && r.Intn(3) > 0 {
			lower, upper := z.Split()
			if r.Intn(2) == 0 {
				z = lower
			} else {
				z = upper
			}
		}
		zs[i] = z
	}
	return zs
}

func randPoint(r *rand.Rand) []uint32 {
	p := make([]uint32, 1+r.Intn(4))
	for i := range p {
		p[i] = r.Uint32()
	}
	return p
}

func randNbrs(r *rand.Rand, dims int) map[env.Addr][]Zone {
	n := r.Intn(4)
	if n == 0 {
		return nil
	}
	m := make(map[env.Addr][]Zone, n)
	for i := 0; i < n; i++ {
		m[env.Addr(wiretest.Str(r, 7))] = randZones(r, dims)
	}
	return m
}

func TestWireRoundTrip(t *testing.T) {
	wiretest.RoundTrip(t, 11, 300, []wiretest.Gen{
		{Name: "lookupMsg", Make: func(r *rand.Rand) env.Message {
			return &lookupMsg{
				Point:  randPoint(r),
				Origin: wiretest.ShortAddr(r),
				Nonce:  r.Uint64(),
				Hops:   uint16(r.Intn(1 << 16)),
			}
		}},
		{Name: "lookupReply", Make: func(r *rand.Rand) env.Message {
			return &lookupReply{Nonce: r.Uint64(), Hops: uint16(r.Intn(1 << 16))}
		}},
		{Name: "joinReq", Make: func(r *rand.Rand) env.Message {
			return &joinReq{
				Point:  randPoint(r),
				Joiner: wiretest.ShortAddr(r),
				Hops:   uint16(r.Intn(1 << 16)),
			}
		}},
		{Name: "joinReply", Make: func(r *rand.Rand) env.Message {
			z := randZone(r)
			return &joinReply{Zone: z, Neighbors: randNbrs(r, z.Dims())}
		}},
		{Name: "neighborUpdate", Make: func(r *rand.Rand) env.Message {
			dims := 1 + r.Intn(3)
			return &neighborUpdate{Zones: randZones(r, dims), Nbrs: randNbrs(r, dims)}
		}},
		{Name: "takeoverNotice", Make: func(r *rand.Rand) env.Message {
			return &takeoverNotice{Dead: wiretest.ShortAddr(r), Zones: randZones(r, 2)}
		}},
		{Name: "leaveNotice", Make: func(r *rand.Rand) env.Message {
			return &leaveNotice{Zones: randZones(r, 2), Nbrs: randNbrs(r, 2)}
		}},
	})
}
