package can

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootZoneCoversEverything(t *testing.T) {
	z := RootZone(4)
	if !z.Contains([]uint32{0, 0, 0, 0}) || !z.Contains([]uint32{^uint32(0), 1, 2, 3}) {
		t.Fatal("root zone must contain all points")
	}
	if z.Volume() != 1.0 {
		t.Fatalf("root volume = %v, want 1", z.Volume())
	}
}

func TestSplitPartitionsZone(t *testing.T) {
	z := RootZone(2)
	lo, hi := z.Split()
	if lo.Volume()+hi.Volume() != 1.0 {
		t.Fatalf("split volumes %v + %v != 1", lo.Volume(), hi.Volume())
	}
	if lo.Depth != 1 || hi.Depth != 1 {
		t.Fatalf("depths %d,%d want 1,1", lo.Depth, hi.Depth)
	}
	if !Adjacent(lo, hi) {
		t.Fatal("split halves must be adjacent")
	}
	// Halves split along dim 0; second-level splits use dim 1.
	lo2a, lo2b := lo.Split()
	if lo2a.Hi[1] == lo.Hi[1] && lo2b.Lo[1] == lo.Lo[1] {
		t.Fatal("second split should halve dimension 1")
	}
}

// splitRandomly performs n random splits starting from the root and
// returns the leaf zones, mimicking n+1 protocol joins.
func splitRandomly(dims, n int, rng *rand.Rand) []Zone {
	zones := []Zone{RootZone(dims)}
	for i := 0; i < n; i++ {
		j := rng.Intn(len(zones))
		if !zones[j].Splittable() {
			continue
		}
		lo, hi := zones[j].Split()
		zones[j] = lo
		zones = append(zones, hi)
	}
	return zones
}

func TestZonesTileSpaceProperty(t *testing.T) {
	// Property: after any split sequence, every point belongs to exactly
	// one zone, and total volume is 1.
	check := func(seed int64, nSplits uint8, dims8 uint8) bool {
		dims := 2 + int(dims8%3) // 2..4
		rng := rand.New(rand.NewSource(seed))
		zones := splitRandomly(dims, int(nSplits%60)+1, rng)
		vol := 0.0
		for _, z := range zones {
			vol += z.Volume()
		}
		if vol < 0.999999 || vol > 1.000001 {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			p := make([]uint32, dims)
			for i := range p {
				p[i] = rng.Uint32()
			}
			owners := 0
			for _, z := range zones {
				if z.Contains(p) {
					owners++
				}
			}
			if owners != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySymmetricProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zones := splitRandomly(3, 30, rng)
		for i := range zones {
			for j := range zones {
				if Adjacent(zones[i], zones[j]) != Adjacent(zones[j], zones[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestZoneNotAdjacentToItselfAfterSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	zones := splitRandomly(2, 40, rng)
	for _, z := range zones {
		if Adjacent(z, z) {
			t.Fatalf("zone %v adjacent to itself", z)
		}
	}
}

func TestTorusWraparoundAdjacency(t *testing.T) {
	// Two opposite edge slabs of a 2-d space abut across the 0/Span seam.
	root := RootZone(2)
	left, right := root.Split() // split dim 0 at Span/2
	ll, _ := left.Split()       // dim 1
	// Further split left half along dim 0 again.
	lll, _ := ll.Split()
	_ = lll
	if !Adjacent(left, right) {
		t.Fatal("halves sharing an internal face must be adjacent")
	}
	// left spans [0, Span/2), right spans [Span/2, Span): they also abut
	// across the torus seam, but that is still one shared face per
	// dimension pair — Adjacent must be true, not double counted.
	a := Zone{Lo: []uint64{0, 0}, Hi: []uint64{Span / 4, Span}, Depth: 2}
	b := Zone{Lo: []uint64{3 * Span / 4, 0}, Hi: []uint64{Span, Span}, Depth: 2}
	if !Adjacent(a, b) {
		t.Fatal("zones abutting across the torus seam must be adjacent")
	}
}

func TestDistanceSqZeroInsideAndPositiveOutside(t *testing.T) {
	z := Zone{Lo: []uint64{0, 0}, Hi: []uint64{Span / 2, Span / 2}, Depth: 2}
	if d := z.DistanceSq([]uint32{1, 1}); d != 0 {
		t.Fatalf("inside distance = %v", d)
	}
	if d := z.DistanceSq([]uint32{uint32(Span/2) + 10, 0}); d == 0 {
		t.Fatal("outside distance must be positive")
	}
	// Torus: a point just "left" of 0 is close to the zone via wraparound.
	d := z.DistanceSq([]uint32{^uint32(0) - 5, 1})
	if d > 100 {
		t.Fatalf("wraparound distance = %v, want small", d)
	}
}

func TestDistanceMonotoneTowardZone(t *testing.T) {
	z := Zone{Lo: []uint64{Span / 2, 0}, Hi: []uint64{3 * Span / 4, Span}, Depth: 2}
	far := z.DistanceSq([]uint32{0, 5})
	near := z.DistanceSq([]uint32{uint32(Span / 4), 5})
	if near >= far {
		t.Fatalf("distance did not decrease approaching the zone: near=%v far=%v", near, far)
	}
}

func TestVolumeHalvesWithDepthProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		zones := splitRandomly(4, 50, rng)
		for _, z := range zones {
			want := 1.0
			for i := 0; i < z.Depth; i++ {
				want /= 2
			}
			got := z.Volume()
			if got < want*0.999999 || got > want*1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
