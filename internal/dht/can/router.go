package can

import (
	"math"
	"sort"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
)

// Config controls a CAN router instance.
type Config struct {
	// Dims is the dimensionality d of the coordinate space. The paper's
	// simulations use d=4 (its §5.5.1 analysis models the average lookup
	// as n^(1/4) hops).
	Dims int

	// Maintenance enables periodic keepalives and failure detection.
	// Static experiments (Figures 3-5, Table 4) run with maintenance off
	// so that simulations quiesce; the churn experiment (Figure 6) turns
	// it on.
	Maintenance bool

	// KeepaliveInterval is how often neighbors exchange keepalives.
	KeepaliveInterval time.Duration

	// FailTimeout is how long a neighbor must stay silent before it is
	// declared failed; the paper assumes 15 seconds (§5.6).
	FailTimeout time.Duration

	// LookupTimeout bounds how long a Lookup waits before reporting
	// failure with env.NilAddr.
	LookupTimeout time.Duration

	// JoinRetry is how long a joiner waits for a join reply before
	// retrying with a fresh random point.
	JoinRetry time.Duration

	// MaxHops caps greedy routing to break transient loops.
	MaxHops int
}

// DefaultConfig returns the paper's simulation configuration.
func DefaultConfig() Config {
	return Config{
		Dims:              4,
		KeepaliveInterval: 5 * time.Second,
		FailTimeout:       15 * time.Second,
		LookupTimeout:     30 * time.Second,
		JoinRetry:         20 * time.Second,
		MaxHops:           512,
	}
}

type neighborInfo struct {
	zones     []Zone
	lastHeard time.Time
	// nbrs is the neighbor's own advertised neighbor table, used to pick
	// the takeover claimant deterministically when it fails.
	nbrs map[env.Addr][]Zone
}

// Router is a CAN node's routing layer. It implements dht.Router.
type Router struct {
	env env.Env
	cfg Config

	joined    bool
	zones     []Zone
	neighbors map[env.Addr]*neighborInfo

	locChange []func()

	nonce     uint64
	pending   map[uint64]*pendingLookup
	stopMaint func()
	joinTimer env.Timer

	// adopted tracks zones taken over per dead node, for reconciling
	// duplicate claims.
	adopted map[env.Addr][]Zone

	// Hop statistics for the evaluation (§5.5.1 analysis bench).
	LookupCount int64
	LookupHops  int64
}

// dropZones removes the given zones (matched by bounds) from the owned
// set.
func (r *Router) dropZones(zs []Zone) {
	keep := r.zones[:0]
outer:
	for _, z := range r.zones {
		for _, d := range zs {
			if sameZone(z, d) {
				continue outer
			}
		}
		keep = append(keep, z)
	}
	r.zones = keep
}

func sameZone(a, b Zone) bool {
	if a.Dims() != b.Dims() {
		return false
	}
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}

type pendingLookup struct {
	cb    func(env.Addr)
	timer env.Timer
}

// New creates a CAN router bound to the node environment. Call Join to
// enter (or create) a network.
func New(e env.Env, cfg Config) *Router {
	if cfg.Dims <= 0 {
		cfg.Dims = 4
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 512
	}
	if cfg.KeepaliveInterval <= 0 {
		cfg.KeepaliveInterval = 5 * time.Second
	}
	if cfg.FailTimeout <= 0 {
		cfg.FailTimeout = 15 * time.Second
	}
	if cfg.LookupTimeout <= 0 {
		cfg.LookupTimeout = 30 * time.Second
	}
	if cfg.JoinRetry <= 0 {
		cfg.JoinRetry = 20 * time.Second
	}
	return &Router{
		env:       e,
		cfg:       cfg,
		neighbors: make(map[env.Addr]*neighborInfo),
	}
}

// Dims returns the configured dimensionality.
func (r *Router) Dims() int { return r.cfg.Dims }

// LookupStats reports how many lookups this node initiated and the total
// overlay hops their answers traversed (§5.5.1's analysis input).
func (r *Router) LookupStats() (count, hops int64) { return r.LookupCount, r.LookupHops }

// Zones returns the node's currently owned zones (normally one; more
// after a takeover).
func (r *Router) Zones() []Zone { return r.zones }

// EstimateNodes estimates the overlay size from the node's own share of
// the coordinate space: with n nodes splitting the space, each owns
// ~1/n of the total volume. The statistics catalog feeds this to the
// optimizer's NetStats without any global census.
func (r *Router) EstimateNodes() int {
	v := TotalVolume(r.zones)
	if v <= 0 || v > 1 {
		return 1
	}
	n := int(1/v + 0.5)
	if n < 1 {
		return 1
	}
	return n
}

// Ready implements dht.Router.
func (r *Router) Ready() bool { return r.joined && len(r.zones) > 0 }

// Owns implements dht.Router.
func (r *Router) Owns(k dht.Key) bool { return r.ownsPoint(k.Point(r.cfg.Dims)) }

func (r *Router) ownsPoint(p []uint32) bool {
	for _, z := range r.zones {
		if z.Contains(p) {
			return true
		}
	}
	return false
}

// Neighbors implements dht.Router.
func (r *Router) Neighbors() []env.Addr {
	out := make([]env.Addr, 0, len(r.neighbors))
	for a := range r.neighbors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OnLocationMapChange implements dht.Router.
func (r *Router) OnLocationMapChange(f func()) { r.locChange = append(r.locChange, f) }

func (r *Router) fireLocChange() {
	for _, f := range r.locChange {
		f()
	}
}

// Join implements dht.Router. With env.NilAddr it creates a new network
// owning the whole coordinate space; otherwise it routes a join request
// via the landmark to the owner of a random point (§3.1.1).
func (r *Router) Join(landmark env.Addr) {
	if landmark == env.NilAddr {
		r.zones = []Zone{RootZone(r.cfg.Dims)}
		r.joined = true
		r.startMaintenance()
		r.fireLocChange()
		return
	}
	r.sendJoin(landmark)
}

func (r *Router) sendJoin(landmark env.Addr) {
	p := r.randomPoint()
	r.env.Send(landmark, &joinReq{Point: p, Joiner: r.env.Addr()})
	r.joinTimer = r.env.After(r.cfg.JoinRetry, func() {
		if !r.joined {
			r.sendJoin(landmark)
		}
	})
}

func (r *Router) randomPoint() []uint32 {
	p := make([]uint32, r.cfg.Dims)
	for i := range p {
		p[i] = r.env.Rand().Uint32()
	}
	return p
}

// Leave implements dht.Router: the node hands its zones to its
// smallest-volume neighbor and departs, returning that neighbor.
func (r *Router) Leave() env.Addr {
	if !r.joined {
		return env.NilAddr
	}
	target, ok := r.smallestNeighbor()
	if ok {
		r.env.Send(target, &leaveNotice{Zones: r.zones, Nbrs: r.neighborSummary()})
	}
	r.joined = false
	r.zones = nil
	r.neighbors = make(map[env.Addr]*neighborInfo)
	if r.stopMaint != nil {
		r.stopMaint()
		r.stopMaint = nil
	}
	r.fireLocChange()
	return target
}

func (r *Router) smallestNeighbor() (env.Addr, bool) {
	best := env.NilAddr
	bestVol := math.Inf(1)
	for a, ni := range r.neighbors {
		v := TotalVolume(ni.zones)
		if v < bestVol || (v == bestVol && a < best) {
			best, bestVol = a, v
		}
	}
	return best, best != env.NilAddr
}

// Lookup implements dht.Router.
func (r *Router) Lookup(k dht.Key, cb func(env.Addr)) {
	p := k.Point(r.cfg.Dims)
	r.LookupCount++
	if r.ownsPoint(p) {
		cb(r.env.Addr())
		return
	}
	r.nonce++
	n := r.nonce
	pl := &pendingLookup{cb: cb}
	pl.timer = r.env.After(r.cfg.LookupTimeout, func() {
		if _, ok := r.pending[n]; ok {
			delete(r.pending, n)
			cb(env.NilAddr)
		}
	})
	if r.pending == nil {
		r.pending = make(map[uint64]*pendingLookup)
	}
	r.pending[n] = pl
	r.forward(p, &lookupMsg{Point: p, Origin: r.env.Addr(), Nonce: n}, env.NilAddr)
}

// forward greedily sends m toward the owner of point p, skipping the
// neighbor the message arrived from when possible.
func (r *Router) forward(p []uint32, m env.Message, exclude env.Addr) bool {
	best := env.NilAddr
	bestDist := math.Inf(1)
	for a, ni := range r.neighbors {
		if a == exclude {
			continue
		}
		d := MinDistanceSq(ni.zones, p)
		if d < bestDist || (d == bestDist && a < best) {
			best, bestDist = a, d
		}
	}
	if best == env.NilAddr && exclude != env.NilAddr {
		// Only the arrival link is available; bounce back rather than drop.
		best = exclude
	}
	if best == env.NilAddr {
		return false
	}
	r.env.Send(best, m)
	return true
}

// HandleMessage implements dht.Router.
func (r *Router) HandleMessage(from env.Addr, m env.Message) bool {
	switch msg := m.(type) {
	case *lookupMsg:
		r.onLookup(from, msg)
	case *lookupReply:
		r.onLookupReply(from, msg)
	case *joinReq:
		r.onJoinReq(from, msg)
	case *joinReply:
		r.onJoinReply(from, msg)
	case *neighborUpdate:
		r.onNeighborUpdate(from, msg)
	case *takeoverNotice:
		r.onTakeover(from, msg)
	case *leaveNotice:
		r.onLeave(from, msg)
	default:
		return false
	}
	return true
}

func (r *Router) onLookup(from env.Addr, m *lookupMsg) {
	if r.ownsPoint(m.Point) {
		r.env.Send(m.Origin, &lookupReply{Nonce: m.Nonce, Hops: m.Hops + 1})
		return
	}
	m.Hops++
	if int(m.Hops) > r.cfg.MaxHops {
		return
	}
	r.forward(m.Point, m, from)
}

func (r *Router) onLookupReply(from env.Addr, m *lookupReply) {
	pl, ok := r.pending[m.Nonce]
	if !ok {
		return
	}
	delete(r.pending, m.Nonce)
	pl.timer.Stop()
	r.LookupHops += int64(m.Hops)
	pl.cb(from)
}

func (r *Router) onJoinReq(from env.Addr, m *joinReq) {
	if !r.joined {
		return
	}
	if !r.ownsPoint(m.Point) {
		m.Hops++
		if int(m.Hops) > r.cfg.MaxHops {
			return
		}
		r.forward(m.Point, m, from)
		return
	}
	// Split the zone containing the point; the joiner receives the half
	// containing its chosen point, this node keeps the other half.
	zi := -1
	for i, z := range r.zones {
		if z.Contains(m.Point) {
			zi = i
			break
		}
	}
	if zi < 0 || !r.zones[zi].Splittable() || m.Joiner == r.env.Addr() {
		return
	}
	lower, upper := r.zones[zi].Split()
	keep, give := lower, upper
	if lower.Contains(m.Point) {
		keep, give = upper, lower
	}
	r.zones[zi] = keep

	// Snapshot for the joiner: our neighbors plus ourselves (post-split).
	snapshot := make(map[env.Addr][]Zone, len(r.neighbors)+1)
	for a, ni := range r.neighbors {
		snapshot[a] = ni.zones
	}
	snapshot[r.env.Addr()] = cloneZones(r.zones)
	r.env.Send(m.Joiner, &joinReply{Zone: give, Neighbors: snapshot})

	// Tell every old neighbor about our shrunken zone set before pruning,
	// so nodes that are no longer adjacent drop us symmetrically.
	r.broadcastUpdate()
	// The joiner becomes a neighbor; prune neighbors that are no longer
	// adjacent to our shrunken zone set.
	r.neighbors[m.Joiner] = &neighborInfo{zones: []Zone{give}, lastHeard: r.env.Now()}
	r.pruneNeighbors()
	r.fireLocChange()
}

func (r *Router) onJoinReply(from env.Addr, m *joinReply) {
	if r.joined {
		return
	}
	if r.joinTimer != nil {
		r.joinTimer.Stop()
		r.joinTimer = nil
	}
	r.joined = true
	r.zones = []Zone{m.Zone}
	r.neighbors = make(map[env.Addr]*neighborInfo)
	for a, zs := range m.Neighbors {
		if a == r.env.Addr() {
			continue
		}
		if AnyAdjacent(r.zones, zs) {
			r.neighbors[a] = &neighborInfo{zones: zs, lastHeard: r.env.Now()}
		}
	}
	r.broadcastUpdate()
	r.startMaintenance()
	r.fireLocChange()
}

func (r *Router) onNeighborUpdate(from env.Addr, m *neighborUpdate) {
	if !r.joined {
		return
	}
	if !AnyAdjacent(r.zones, m.Zones) {
		if _, known := r.neighbors[from]; known {
			delete(r.neighbors, from)
			// One-shot reply so the peer re-evaluates adjacency against
			// our current zones and prunes us too. The peer only replies
			// in turn if it still knows us, so this cannot loop.
			r.env.Send(from, &neighborUpdate{Zones: cloneZones(r.zones)})
		}
		return
	}
	ni, known := r.neighbors[from]
	if !known {
		ni = &neighborInfo{}
		r.neighbors[from] = ni
	}
	ni.zones = m.Zones
	ni.lastHeard = r.env.Now()
	if m.Nbrs != nil {
		ni.nbrs = m.Nbrs
	}
	if !known {
		// Introduce ourselves so the link is symmetric.
		r.env.Send(from, &neighborUpdate{Zones: cloneZones(r.zones)})
	}
}

func (r *Router) onTakeover(from env.Addr, m *takeoverNotice) {
	if !r.joined {
		return
	}
	delete(r.neighbors, m.Dead)
	// Reconcile duplicate claims: if we also adopted this dead node's
	// zones, the lower address keeps them.
	if mine, ok := r.adopted[m.Dead]; ok && from < r.env.Addr() {
		delete(r.adopted, m.Dead)
		r.dropZones(mine)
		r.fireLocChange()
	}
	if AnyAdjacent(r.zones, m.Zones) {
		ni, ok := r.neighbors[from]
		if !ok {
			ni = &neighborInfo{}
			r.neighbors[from] = ni
		}
		ni.zones = m.Zones
		ni.lastHeard = r.env.Now()
	}
}

func (r *Router) onLeave(from env.Addr, m *leaveNotice) {
	if !r.joined {
		return
	}
	r.adoptZones(from, m.Zones, m.Nbrs)
}

// adoptZones merges a departed node's zones into ours and stitches up the
// neighborhood.
func (r *Router) adoptZones(dead env.Addr, zones []Zone, deadNbrs map[env.Addr][]Zone) {
	r.zones = append(r.zones, cloneZones(zones)...)
	delete(r.neighbors, dead)
	for a, zs := range deadNbrs {
		if a == r.env.Addr() || a == dead {
			continue
		}
		if _, ok := r.neighbors[a]; !ok && AnyAdjacent(r.zones, zs) {
			r.neighbors[a] = &neighborInfo{zones: zs, lastHeard: r.env.Now()}
		}
	}
	notice := &takeoverNotice{Dead: dead, Zones: cloneZones(r.zones)}
	for _, a := range r.Neighbors() {
		r.env.Send(a, notice)
	}
	r.fireLocChange()
}

func (r *Router) pruneNeighbors() {
	for a, ni := range r.neighbors {
		if !AnyAdjacent(r.zones, ni.zones) {
			delete(r.neighbors, a)
		}
	}
}

func (r *Router) neighborSummary() map[env.Addr][]Zone {
	m := make(map[env.Addr][]Zone, len(r.neighbors))
	for a, ni := range r.neighbors {
		m[a] = ni.zones
	}
	return m
}

// broadcastUpdate sends our zone set to every neighbor, in sorted
// address order — broadcast order must be deterministic for seeded
// simulations to replay (the fault layer's loss rolls are consumed per
// send).
func (r *Router) broadcastUpdate() {
	u := &neighborUpdate{Zones: cloneZones(r.zones)}
	for _, a := range r.Neighbors() {
		r.env.Send(a, u)
	}
}

// startMaintenance begins periodic keepalives and failure detection if
// the configuration enables them.
func (r *Router) startMaintenance() {
	if !r.cfg.Maintenance || r.stopMaint != nil {
		return
	}
	r.stopMaint = env.Every(r.env, r.cfg.KeepaliveInterval, func() {
		r.sendKeepalives()
		r.detectFailures()
	})
}

func (r *Router) sendKeepalives() {
	if len(r.neighbors) == 0 {
		return
	}
	summary := r.neighborSummary()
	u := &neighborUpdate{Zones: cloneZones(r.zones), Nbrs: summary}
	for _, a := range r.Neighbors() {
		r.env.Send(a, u)
	}
}

// detectFailures declares neighbors silent for FailTimeout dead and runs
// CAN's takeover: among the dead node's neighbors, the one with the
// smallest total zone volume (ties by address) adopts the dead zones.
// Every neighbor evaluates the same rule on the dead node's last
// advertised neighbor table, so the claimant is chosen without a
// coordination round.
func (r *Router) detectFailures() {
	now := r.env.Now()
	var deads []env.Addr
	for a, ni := range r.neighbors {
		if now.Sub(ni.lastHeard) > r.cfg.FailTimeout {
			deads = append(deads, a)
		}
	}
	// Takeovers send messages; process the dead in a deterministic order.
	sort.Slice(deads, func(i, j int) bool { return deads[i] < deads[j] })
	for _, dead := range deads {
		deadInfo, ok := r.neighbors[dead]
		if !ok {
			continue
		}
		delete(r.neighbors, dead)

		// Pick the claimant from the dead node's *advertised* neighbor
		// table only: every surviving neighbor received (approximately)
		// the same table in the dead node's last keepalive, so they all
		// compute the same claimant. Using locally-known volumes instead
		// would let two nodes each believe they are smallest.
		self := r.env.Addr()
		claimant := env.NilAddr
		claimVol := math.Inf(1)
		for ca, czs := range deadInfo.nbrs {
			if ca == dead {
				continue
			}
			// Skip candidates we ourselves believe have failed.
			if cni, known := r.neighbors[ca]; known && now.Sub(cni.lastHeard) > r.cfg.FailTimeout {
				continue
			}
			v := TotalVolume(czs)
			if v < claimVol || (v == claimVol && ca < claimant) || claimant == env.NilAddr {
				claimant, claimVol = ca, v
			}
		}
		if claimant == env.NilAddr {
			// No advertised table (the node died before its first
			// keepalive carried one). Fall back to claiming ourselves;
			// duplicate claims are reconciled via takeoverNotice.
			claimant = self
		}
		if claimant == self {
			nbrs := deadInfo.nbrs
			if nbrs == nil {
				nbrs = map[env.Addr][]Zone{}
			}
			if r.adopted == nil {
				r.adopted = make(map[env.Addr][]Zone)
			}
			r.adopted[dead] = cloneZones(deadInfo.zones)
			r.adoptZones(dead, deadInfo.zones, nbrs)
		}
	}
}

func cloneZones(zs []Zone) []Zone {
	out := make([]Zone, len(zs))
	for i, z := range zs {
		out[i] = z.Clone()
	}
	return out
}

var _ dht.Router = (*Router)(nil)
