package can

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/dht"
	"pier/internal/env"
	"pier/internal/simnet"
	"pier/internal/topology"
)

// testNet wires n CAN routers onto a simulated network.
type testNet struct {
	nw      *simnet.Network
	envs    []*simnet.NodeEnv
	routers []*Router
}

func newTestNet(t *testing.T, n int, cfg Config) *testNet {
	t.Helper()
	tn := &testNet{nw: simnet.New(topology.NewFullMeshInfinite(), 7)}
	for i := 0; i < n; i++ {
		e := tn.nw.AddNode()
		r := New(e, cfg)
		e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) {
			r.HandleMessage(from, m)
		}))
		tn.envs = append(tn.envs, e)
		tn.routers = append(tn.routers, r)
	}
	return tn
}

// joinAll performs protocol joins sequentially through node 0.
func (tn *testNet) joinAll() {
	tn.routers[0].Join(env.NilAddr)
	for i := 1; i < len(tn.routers); i++ {
		r := tn.routers[i]
		landmark := tn.envs[0].Addr()
		tn.envs[i].Post(func() { r.Join(landmark) })
		tn.nw.RunFor(2 * time.Minute)
	}
}

func (tn *testNet) checkInvariants(t *testing.T) {
	t.Helper()
	vol := 0.0
	for i, r := range tn.routers {
		if !tn.nw.Alive(i) {
			continue
		}
		for _, z := range r.Zones() {
			vol += z.Volume()
		}
	}
	if vol < 0.999999 || vol > 1.000001 {
		t.Fatalf("zones cover %v of the space, want 1", vol)
	}
}

func TestProtocolJoinPartitionsSpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			tn := newTestNet(t, n, DefaultConfig())
			tn.joinAll()
			tn.checkInvariants(t)
			for i, r := range tn.routers {
				if !r.Ready() {
					t.Fatalf("node %d not ready after join", i)
				}
				if n > 1 && len(r.Neighbors()) == 0 {
					t.Fatalf("node %d has no neighbors", i)
				}
			}
		})
	}
}

func TestNeighborSymmetryAfterJoins(t *testing.T) {
	tn := newTestNet(t, 12, DefaultConfig())
	tn.joinAll()
	for i, r := range tn.routers {
		for _, a := range r.Neighbors() {
			j := addrIndex(t, a)
			found := false
			for _, back := range tn.routers[j].Neighbors() {
				if back == tn.envs[i].Addr() {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric link: %d knows %d but not vice versa", i, j)
			}
		}
	}
}

func addrIndex(t *testing.T, a env.Addr) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(string(a), "sim:%d", &i); err != nil {
		t.Fatalf("bad addr %q", a)
	}
	return i
}

func TestLookupFindsUniqueOwner(t *testing.T) {
	tn := newTestNet(t, 16, DefaultConfig())
	tn.joinAll()
	for trial := 0; trial < 60; trial++ {
		k := dht.KeyOf("ns", fmt.Sprint(trial))
		owners := 0
		var ownerAddr env.Addr
		for i, r := range tn.routers {
			if r.Owns(k) {
				owners++
				ownerAddr = tn.envs[i].Addr()
			}
		}
		if owners != 1 {
			t.Fatalf("key %v owned by %d nodes", k, owners)
		}
		var got env.Addr
		done := false
		r := tn.routers[5]
		tn.envs[5].Post(func() {
			r.Lookup(k, func(a env.Addr) { got, done = a, true })
		})
		tn.nw.RunFor(time.Minute)
		if !done {
			t.Fatalf("lookup for %v did not complete", k)
		}
		if got != ownerAddr {
			t.Fatalf("lookup returned %v, owner is %v", got, ownerAddr)
		}
	}
}

func TestLocalLookupSynchronous(t *testing.T) {
	tn := newTestNet(t, 1, DefaultConfig())
	tn.routers[0].Join(env.NilAddr)
	done := false
	tn.routers[0].Lookup(dht.KeyOf("a", "b"), func(a env.Addr) {
		if a != tn.envs[0].Addr() {
			t.Errorf("local lookup returned %v", a)
		}
		done = true
	})
	if !done {
		t.Fatal("footnote 3: local lookups must return synchronously")
	}
}

func TestBootstrapMatchesOracle(t *testing.T) {
	tn := newTestNet(t, 64, DefaultConfig())
	sm := Bootstrap(tn.routers, 99)
	tn.checkInvariants(t)
	for trial := 0; trial < 100; trial++ {
		k := dht.KeyOf("table", fmt.Sprint(trial))
		want := sm.Owner(k)
		for i, r := range tn.routers {
			if r.Owns(k) != (i == want) {
				t.Fatalf("oracle says %d owns %v; router %d disagrees", want, k, i)
			}
		}
	}
}

func TestBootstrapLookupWorks(t *testing.T) {
	tn := newTestNet(t, 128, DefaultConfig())
	sm := Bootstrap(tn.routers, 3)
	hops := 0
	for trial := 0; trial < 40; trial++ {
		k := dht.KeyOf("t", fmt.Sprint(trial))
		want := tn.envs[sm.Owner(k)].Addr()
		var got env.Addr
		src := tn.routers[trial%len(tn.routers)]
		tn.envs[trial%len(tn.routers)].Post(func() {
			src.Lookup(k, func(a env.Addr) { got = a })
		})
		tn.nw.RunFor(time.Minute)
		if got != want {
			t.Fatalf("trial %d: lookup %v got %v want %v", trial, k, got, want)
		}
		_ = hops
	}
}

func TestLookupHopsScaleAsRoot4(t *testing.T) {
	// §5.5.1: with d=4 the average lookup is about n^(1/4) hops.
	if testing.Short() {
		t.Skip("short mode")
	}
	tn := newTestNet(t, 256, DefaultConfig())
	sm := Bootstrap(tn.routers, 17)
	src := tn.routers[0]
	n := 0
	for trial := 0; trial < 100; trial++ {
		k := dht.KeyOf("x", fmt.Sprint(trial))
		if sm.Owner(k) == 0 {
			continue
		}
		tn.envs[0].Post(func() { src.Lookup(k, func(env.Addr) {}) })
		n++
	}
	tn.nw.RunFor(10 * time.Minute)
	avg := float64(src.LookupHops) / float64(n)
	// n^(1/4) = 4 for 256 nodes; allow generous slack for greedy routing.
	if avg < 1 || avg > 12 {
		t.Fatalf("average hops = %.2f, want around 4", avg)
	}
}

func TestGracefulLeaveHandsOverZone(t *testing.T) {
	tn := newTestNet(t, 8, DefaultConfig())
	tn.joinAll()
	leaver := tn.routers[3]
	tn.envs[3].Post(func() { leaver.Leave() })
	tn.nw.RunFor(time.Minute)
	tn.nw.Kill(3) // node is gone from the network after leaving
	tn.checkInvariants(t)
	if leaver.Ready() {
		t.Fatal("leaver still ready")
	}
}

func TestFailureTakeoverRestoresCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	tn := newTestNet(t, 10, cfg)
	tn.joinAll()
	// Let keepalives propagate neighbor tables (needed for takeover).
	tn.nw.RunFor(12 * time.Second)
	tn.nw.Kill(4)
	// Failure detection at 15s + keepalive period slack.
	tn.nw.RunFor(90 * time.Second)
	tn.checkInvariants(t)
	// Lookups into the dead node's old space must now succeed.
	ok := 0
	for trial := 0; trial < 30; trial++ {
		k := dht.KeyOf("y", fmt.Sprint(trial))
		var got env.Addr
		tn.envs[0].Post(func() { tn.routers[0].Lookup(k, func(a env.Addr) { got = a }) })
		tn.nw.RunFor(2 * time.Minute)
		if got != env.NilAddr && got != tn.envs[4].Addr() {
			ok++
		}
	}
	if ok < 28 {
		t.Fatalf("only %d/30 lookups succeeded after takeover", ok)
	}
}

func TestJoinAfterFailureHeals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Maintenance = true
	tn := newTestNet(t, 6, cfg)
	tn.joinAll()
	tn.nw.RunFor(12 * time.Second)
	tn.nw.Kill(2)
	tn.nw.RunFor(60 * time.Second)
	// A replacement node joins through node 0.
	e := tn.nw.AddNode()
	r := New(e, cfg)
	e.SetHandler(env.HandlerFunc(func(from env.Addr, m env.Message) { r.HandleMessage(from, m) }))
	tn.envs = append(tn.envs, e)
	tn.routers = append(tn.routers, r)
	landmark := tn.envs[0].Addr()
	e.Post(func() { r.Join(landmark) })
	tn.nw.RunFor(2 * time.Minute)
	if !r.Ready() {
		t.Fatal("replacement node failed to join after a failure")
	}
	tn.checkInvariants(t)
}
