package can

import (
	"encoding/gob"

	"pier/internal/env"
)

func init() {
	gob.Register(&lookupMsg{})
	gob.Register(&lookupReply{})
	gob.Register(&joinReq{})
	gob.Register(&joinReply{})
	gob.Register(&neighborUpdate{})
	gob.Register(&takeoverNotice{})
	gob.Register(&leaveNotice{})
}

func zonesWireSize(zs []Zone) int {
	n := 2
	for _, z := range zs {
		n += 2*8*z.Dims() + 2
	}
	return n
}

func nbrsWireSize(m map[env.Addr][]Zone) int {
	n := 2
	for _, zs := range m {
		n += env.AddrSize + zonesWireSize(zs)
	}
	return n
}

// lookupMsg is routed greedily toward Point; the owner replies directly
// to Origin.
type lookupMsg struct {
	Point  []uint32
	Origin env.Addr
	Nonce  uint64
	Hops   uint16
}

func (m *lookupMsg) WireSize() int {
	return env.HeaderSize + 4*len(m.Point) + env.AddrSize + 10
}

// lookupReply is sent by the owner of the looked-up point directly to the
// origin; the sender address is the answer.
type lookupReply struct {
	Nonce uint64
	Hops  uint16
}

func (m *lookupReply) WireSize() int { return env.HeaderSize + 10 }

// joinReq is routed to the owner of Point, who splits its zone and hands
// the half containing Point to Joiner.
type joinReq struct {
	Point  []uint32
	Joiner env.Addr
	Hops   uint16
}

func (m *joinReq) WireSize() int {
	return env.HeaderSize + 4*len(m.Point) + env.AddrSize + 2
}

// joinReply carries the new node's zone and a snapshot of the splitter's
// neighborhood so the joiner can build its routing table.
type joinReply struct {
	Zone      Zone
	Neighbors map[env.Addr][]Zone
}

func (m *joinReply) WireSize() int {
	return env.HeaderSize + zonesWireSize([]Zone{m.Zone}) + nbrsWireSize(m.Neighbors)
}

// neighborUpdate doubles as the keepalive: it advertises the sender's
// zones and (for deterministic takeover) the sender's own neighbor table.
type neighborUpdate struct {
	Zones []Zone
	Nbrs  map[env.Addr][]Zone
}

func (m *neighborUpdate) WireSize() int {
	return env.HeaderSize + zonesWireSize(m.Zones) + nbrsWireSize(m.Nbrs)
}

// takeoverNotice announces that the sender has adopted the zones of a
// failed or departed node.
type takeoverNotice struct {
	Dead  env.Addr
	Zones []Zone // the sender's full zone set after the takeover
}

func (m *takeoverNotice) WireSize() int {
	return env.HeaderSize + env.AddrSize + zonesWireSize(m.Zones)
}

// leaveNotice hands the sender's zones to the receiver on graceful
// departure; Nbrs lets the receiver stitch the neighborhood together.
type leaveNotice struct {
	Zones []Zone
	Nbrs  map[env.Addr][]Zone
}

func (m *leaveNotice) WireSize() int {
	return env.HeaderSize + zonesWireSize(m.Zones) + nbrsWireSize(m.Nbrs)
}
