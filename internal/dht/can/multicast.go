package can

import (
	"sort"

	"pier/internal/dht"
	"pier/internal/env"
)

// Directed flooding over the CAN neighbor graph, after the multicast
// scheme of Ratnasamy et al. that the paper's content-based multicast
// report [18] builds on. Instead of forwarding to every neighbor (which
// delivers ~2d copies per node), a node that received a message over an
// abutting face in dimension b forwards it only
//
//   - along dimensions lower than b, in both directions, and
//   - along dimension b, away from the sender,
//
// and never forwards along a dimension once the message has traveled
// more than half the torus from the origin (the "half-way rule", which
// stops the two directional waves from colliding). Each node then
// receives close to exactly one copy; residual corner duplicates are
// absorbed by the flooder's duplicate suppression.

// MulticastHint implements dht.MulticastRouter: the center of the
// node's first zone identifies the flood origin for the half-way rule.
func (r *Router) MulticastHint() []uint32 {
	if len(r.zones) == 0 {
		return nil
	}
	z := r.zones[0]
	p := make([]uint32, z.Dims())
	for i := range p {
		p[i] = uint32((z.Lo[i] + z.Hi[i]) / 2)
	}
	return p
}

// MulticastForward implements dht.MulticastRouter.
func (r *Router) MulticastForward(from env.Addr, hint []uint32) []env.Addr {
	if len(r.zones) != 1 || len(hint) != r.cfg.Dims {
		// Multi-zone ownership (post-takeover) or missing geometry:
		// fall back to full flooding; duplicate suppression keeps it
		// correct.
		return r.Neighbors()
	}
	self := r.zones[0]

	arrivalDim := r.cfg.Dims // above every real dimension: origin case
	arrivalDir := 0
	if from != env.NilAddr {
		ni, ok := r.neighbors[from]
		if !ok || len(ni.zones) != 1 {
			return r.Neighbors()
		}
		d, dir, ok := abutment(ni.zones[0], self)
		if !ok {
			return r.Neighbors()
		}
		arrivalDim, arrivalDir = d, dir
	}

	var out []env.Addr
	for a, ni := range r.neighbors {
		if a == from {
			continue
		}
		if len(ni.zones) != 1 {
			out = append(out, a) // odd-shaped neighbor: be safe
			continue
		}
		d, dir, ok := abutment(self, ni.zones[0])
		if !ok {
			continue
		}
		if d > arrivalDim || (d == arrivalDim && dir == -arrivalDir && from != env.NilAddr) {
			continue // covered by a higher-dimension wave or backtracking
		}
		if pastHalfway(hint[d], self, ni.zones[0], d, dir) {
			continue
		}
		out = append(out, a)
	}
	// The flooder sends to these in order; keep it deterministic.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// abutment returns the dimension along which zone b abuts zone a and the
// direction (+1 if b lies on a's high side, -1 on the low side).
func abutment(a, b Zone) (dim, dir int, ok bool) {
	for i := range a.Lo {
		switch {
		case a.Hi[i] == b.Lo[i] || (a.Hi[i] == Span && b.Lo[i] == 0):
			return i, +1, true
		case b.Hi[i] == a.Lo[i] || (b.Hi[i] == Span && a.Lo[i] == 0):
			return i, -1, true
		}
	}
	return 0, 0, false
}

// pastHalfway reports whether forwarding from self to next along dim in
// direction dir would carry the message further than half the torus from
// the origin coordinate — the M-CAN rule that keeps the +dir and -dir
// waves from overlapping.
func pastHalfway(origin uint32, self, next Zone, dim, dir int) bool {
	var traveled uint64
	if dir > 0 {
		traveled = (next.Lo[dim] - uint64(origin) + Span) % Span
	} else {
		traveled = (uint64(origin) - (next.Hi[dim] % Span) + Span) % Span
	}
	return traveled > Span/2
}

var _ dht.MulticastRouter = (*Router)(nil)
