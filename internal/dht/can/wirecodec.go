package can

// Binary wire codecs for the CAN control protocol, mirroring the
// gob.Register calls in messages.go. Neighbor maps are encoded with
// sorted keys so the encoding is deterministic.

import (
	"sort"

	"pier/internal/env"
	"pier/internal/wire"
)

const (
	tagLookupMsg byte = 48 + iota
	tagLookupReply
	tagJoinReq
	tagJoinReply
	tagNeighborUpdate
	tagTakeoverNotice
	tagLeaveNotice
)

func init() {
	wire.Register(tagLookupMsg, &lookupMsg{},
		func(e *wire.Encoder, m env.Message) {
			l := m.(*lookupMsg)
			encodePoint(e, l.Point)
			e.Addr(l.Origin)
			e.Uvarint(l.Nonce)
			e.Uvarint(uint64(l.Hops))
		},
		func(d *wire.Decoder) env.Message {
			return &lookupMsg{
				Point:  decodePoint(d),
				Origin: d.Addr(),
				Nonce:  d.Uvarint(),
				Hops:   uint16(d.Uvarint()),
			}
		})

	wire.Register(tagLookupReply, &lookupReply{},
		func(e *wire.Encoder, m env.Message) {
			l := m.(*lookupReply)
			e.Uvarint(l.Nonce)
			e.Uvarint(uint64(l.Hops))
		},
		func(d *wire.Decoder) env.Message {
			return &lookupReply{Nonce: d.Uvarint(), Hops: uint16(d.Uvarint())}
		})

	wire.Register(tagJoinReq, &joinReq{},
		func(e *wire.Encoder, m env.Message) {
			j := m.(*joinReq)
			encodePoint(e, j.Point)
			e.Addr(j.Joiner)
			e.Uvarint(uint64(j.Hops))
		},
		func(d *wire.Decoder) env.Message {
			return &joinReq{
				Point:  decodePoint(d),
				Joiner: d.Addr(),
				Hops:   uint16(d.Uvarint()),
			}
		})

	wire.Register(tagJoinReply, &joinReply{},
		func(e *wire.Encoder, m env.Message) {
			j := m.(*joinReply)
			encodeZone(e, j.Zone)
			encodeNbrs(e, j.Neighbors)
		},
		func(d *wire.Decoder) env.Message {
			return &joinReply{Zone: decodeZone(d), Neighbors: decodeNbrs(d)}
		})

	wire.Register(tagNeighborUpdate, &neighborUpdate{},
		func(e *wire.Encoder, m env.Message) {
			u := m.(*neighborUpdate)
			encodeZones(e, u.Zones)
			encodeNbrs(e, u.Nbrs)
		},
		func(d *wire.Decoder) env.Message {
			return &neighborUpdate{Zones: decodeZones(d), Nbrs: decodeNbrs(d)}
		})

	wire.Register(tagTakeoverNotice, &takeoverNotice{},
		func(e *wire.Encoder, m env.Message) {
			t := m.(*takeoverNotice)
			e.Addr(t.Dead)
			encodeZones(e, t.Zones)
		},
		func(d *wire.Decoder) env.Message {
			return &takeoverNotice{Dead: d.Addr(), Zones: decodeZones(d)}
		})

	wire.Register(tagLeaveNotice, &leaveNotice{},
		func(e *wire.Encoder, m env.Message) {
			l := m.(*leaveNotice)
			encodeZones(e, l.Zones)
			encodeNbrs(e, l.Nbrs)
		},
		func(d *wire.Decoder) env.Message {
			return &leaveNotice{Zones: decodeZones(d), Nbrs: decodeNbrs(d)}
		})
}

func encodePoint(e *wire.Encoder, p []uint32) {
	e.Len(len(p))
	for _, c := range p {
		e.Uvarint(uint64(c))
	}
}

func decodePoint(d *wire.Decoder) []uint32 {
	n := d.Len()
	if n == 0 {
		return nil
	}
	p := make([]uint32, 0, wire.SliceCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		p = append(p, uint32(d.Uvarint()))
	}
	return p
}

func encodeZone(e *wire.Encoder, z Zone) {
	e.Len(z.Dims())
	for i := range z.Lo {
		e.Uvarint(z.Lo[i])
		e.Uvarint(z.Hi[i])
	}
	e.Int(z.Depth)
}

func decodeZone(d *wire.Decoder) Zone {
	n := d.LenMin(2) // each dimension carries at least lo+hi
	z := Zone{}
	if n > 0 {
		z.Lo = make([]uint64, 0, wire.SliceCap(n))
		z.Hi = make([]uint64, 0, wire.SliceCap(n))
		for i := 0; i < n && d.Err() == nil; i++ {
			z.Lo = append(z.Lo, d.Uvarint())
			z.Hi = append(z.Hi, d.Uvarint())
		}
	}
	z.Depth = d.Int()
	return z
}

func encodeZones(e *wire.Encoder, zs []Zone) {
	e.Len(len(zs))
	for _, z := range zs {
		encodeZone(e, z)
	}
}

func decodeZones(d *wire.Decoder) []Zone {
	n := d.LenMin(2) // every zone carries at least a dims count + depth
	if n == 0 {
		return nil
	}
	zs := make([]Zone, 0, wire.SliceCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		zs = append(zs, decodeZone(d))
	}
	return zs
}

func encodeNbrs(e *wire.Encoder, m map[env.Addr][]Zone) {
	addrs := make([]env.Addr, 0, len(m))
	for a := range m {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	e.Len(len(addrs))
	for _, a := range addrs {
		e.Addr(a)
		encodeZones(e, m[a])
	}
}

func decodeNbrs(d *wire.Decoder) map[env.Addr][]Zone {
	n := d.LenMin(2) // addr length prefix + zones count, minimum
	if n == 0 {
		return nil
	}
	m := make(map[env.Addr][]Zone, wire.SliceCap(n))
	for i := 0; i < n && d.Err() == nil; i++ {
		a := d.Addr()
		m[a] = decodeZones(d)
	}
	return m
}
