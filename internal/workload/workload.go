// Package workload generates the paper's synthetic evaluation tables and
// query (§5.1):
//
//	SELECT R.pkey, S.pkey, R.pad
//	FROM   R, S
//	WHERE  R.num1 = S.pkey
//	  AND  R.num2 > constant1
//	  AND  S.num2 > constant2
//	  AND  f(R.num3, S.num3) > constant3
//
// R has ten times the tuples of S; attributes are uniform; the constants
// give each selection 50% selectivity; 90% of R tuples have exactly one
// matching S tuple; R.pad sizes every result tuple at 1 KB.
package workload

import (
	"math/rand"

	"pier/internal/core"
)

// Column layout of R: pkey, num1 (join column), num2, num3. The pad is
// carried as Tuple.Pad.
const (
	RPkey = iota
	RNum1
	RNum2
	RNum3
)

// Column layout of S: pkey, num2, num3.
const (
	SPkey = iota
	SNum2
	SNum3
)

// Columns of the concatenated (R ++ S) join row.
const (
	JRPkey = iota
	JRNum1
	JRNum2
	JRNum3
	JSPkey
	JSNum2
	JSNum3
)

// NumRange is the domain of num2/num3: uniform integers in [0, NumRange).
const NumRange = 100

// Config parameterizes table generation.
type Config struct {
	// STuples is |S|; |R| = 10 × |S| unless RTuples overrides it.
	STuples int
	// RTuples is |R|; zero means 10 × STuples (§5.1).
	RTuples int
	// MatchFraction is the fraction of R tuples with a join match
	// (default 0.9).
	MatchFraction float64
	// PadBytes is R's pad size; default sizes result tuples at ~1 KB.
	PadBytes int
	// Seed drives generation.
	Seed int64
}

// Norm fills defaults.
func (c Config) Norm() Config {
	if c.RTuples == 0 {
		c.RTuples = 10 * c.STuples
	}
	if c.MatchFraction == 0 {
		c.MatchFraction = 0.9
	}
	if c.PadBytes == 0 {
		// Result tuple = header + R.pkey + S.pkey + pad ≈ 1 KB (§5.1).
		c.PadBytes = 1024 - 60
	}
	return c
}

// Tables holds the generated relations.
type Tables struct {
	R, S []*core.Tuple
	Cfg  Config
}

// Generate builds R and S.
func Generate(cfg Config) *Tables {
	cfg = cfg.Norm()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tables{Cfg: cfg}

	t.S = make([]*core.Tuple, cfg.STuples)
	for i := range t.S {
		t.S[i] = &core.Tuple{Rel: "S", Vals: []core.Value{
			int64(i),
			int64(rng.Intn(NumRange)),
			int64(rng.Intn(NumRange)),
		}}
	}
	t.R = make([]*core.Tuple, cfg.RTuples)
	for i := range t.R {
		var num1 int64
		if rng.Float64() < cfg.MatchFraction && cfg.STuples > 0 {
			num1 = int64(rng.Intn(cfg.STuples)) // exactly one matching S.pkey
		} else {
			num1 = int64(cfg.STuples + i) // no match
		}
		t.R[i] = &core.Tuple{Rel: "R", Vals: []core.Value{
			int64(i),
			num1,
			int64(rng.Intn(NumRange)),
			int64(rng.Intn(NumRange)),
		}, Pad: cfg.PadBytes}
	}
	return t
}

// F is the workload's two-table function f(x, y); it must be evaluated
// after the equi-join (§5.1).
func F(x, y int64) int64 { return (x + y) % NumRange }

func init() {
	core.RegisterFunc("f", func(args []core.Value) core.Value {
		if len(args) != 2 {
			return nil
		}
		x, _ := args[0].(int64)
		y, _ := args[1].(int64)
		return F(x, y)
	})
}

// Constants chooses predicate constants: num2 > c has selectivity sel.
// With num2 uniform over [0, NumRange), c = NumRange(1-sel) - 1.
func Constants(selR, selS, selF float64) (c1, c2, c3 int64) {
	conv := func(sel float64) int64 {
		c := int64(NumRange*(1-sel)) - 1
		if c < -1 {
			c = -1
		}
		if c > NumRange-1 {
			c = NumRange - 1
		}
		return c
	}
	return conv(selR), conv(selS), conv(selF)
}

// JoinPlan builds the §5.1 query plan for a strategy with the given
// predicate constants.
func JoinPlan(strategy core.Strategy, c1, c2, c3 int64) *core.Plan {
	return &core.Plan{
		Tables: []core.TableRef{
			{
				NS:       "R",
				Filter:   &core.Cmp{Op: core.GT, L: &core.Col{Idx: RNum2}, R: &core.Const{V: c1}},
				JoinCols: []int{RNum1},
				RIDCol:   RPkey,
			},
			{
				NS:       "S",
				Filter:   &core.Cmp{Op: core.GT, L: &core.Col{Idx: SNum2}, R: &core.Const{V: c2}},
				JoinCols: []int{SPkey},
				RIDCol:   SPkey,
			},
		},
		Strategy: strategy,
		PostFilter: &core.Cmp{
			Op: core.GT,
			L:  &core.Call{Name: "f", Args: []core.Expr{&core.Col{Idx: JRNum3}, &core.Col{Idx: JSNum3}}},
			R:  &core.Const{V: c3},
		},
		// SELECT R.pkey, S.pkey, R.pad — the pad rides on the tuple body.
		Output: []core.Expr{&core.Col{Idx: JRPkey}, &core.Col{Idx: JSPkey}},
	}
}

// ReferenceJoin computes the exact expected result set with a local
// nested-loop join; distributed runs are verified against it.
func (t *Tables) ReferenceJoin(c1, c2, c3 int64) [][2]int64 {
	var out [][2]int64
	sByPkey := make(map[int64]*core.Tuple, len(t.S))
	for _, s := range t.S {
		sByPkey[s.Vals[SPkey].(int64)] = s
	}
	for _, r := range t.R {
		if r.Vals[RNum2].(int64) <= c1 {
			continue
		}
		s, ok := sByPkey[r.Vals[RNum1].(int64)]
		if !ok {
			continue
		}
		if s.Vals[SNum2].(int64) <= c2 {
			continue
		}
		if F(r.Vals[RNum3].(int64), s.Vals[SNum3].(int64)) <= c3 {
			continue
		}
		out = append(out, [2]int64{r.Vals[RPkey].(int64), s.Vals[SPkey].(int64)})
	}
	return out
}
