package workload

import (
	"testing"
	"testing/quick"

	"pier/internal/core"
)

func TestGenerateShapes(t *testing.T) {
	tb := Generate(Config{STuples: 100, Seed: 1})
	if len(tb.S) != 100 {
		t.Fatalf("|S| = %d", len(tb.S))
	}
	if len(tb.R) != 1000 {
		t.Fatalf("|R| = %d, want 10x|S| (§5.1)", len(tb.R))
	}
	for i, s := range tb.S {
		if s.Vals[SPkey].(int64) != int64(i) {
			t.Fatalf("S pkey not dense at %d", i)
		}
		if len(s.Vals) != 3 || s.Pad != 0 {
			t.Fatalf("S tuple malformed: %v pad=%d", s, s.Pad)
		}
	}
	for _, r := range tb.R {
		if len(r.Vals) != 4 {
			t.Fatalf("R tuple malformed: %v", r)
		}
		if r.Pad == 0 {
			t.Fatal("R must carry the pad (result tuples ~1KB)")
		}
	}
}

func TestMatchFractionNearNinetyPercent(t *testing.T) {
	tb := Generate(Config{STuples: 500, Seed: 7})
	matches := 0
	for _, r := range tb.R {
		if r.Vals[RNum1].(int64) < int64(len(tb.S)) {
			matches++
		}
	}
	frac := float64(matches) / float64(len(tb.R))
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("match fraction %.3f, want ~0.9 (§5.1)", frac)
	}
}

func TestConstantsSelectivity(t *testing.T) {
	// Predicate num2 > c over uniform [0,100) must select ~sel.
	for _, sel := range []float64{0.1, 0.5, 0.9, 1.0} {
		c, _, _ := Constants(sel, sel, sel)
		pass := 0
		for v := int64(0); v < NumRange; v++ {
			if v > c {
				pass++
			}
		}
		got := float64(pass) / NumRange
		if got < sel-0.011 || got > sel+0.011 {
			t.Errorf("sel=%.2f: constant %d passes %.3f", sel, c, got)
		}
	}
	// Degenerate: selectivity 0 passes nothing.
	c, _, _ := Constants(0, 0, 0)
	if c < NumRange-1 {
		t.Errorf("sel=0 constant %d lets values through", c)
	}
}

func TestReferenceJoinMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		tb := Generate(Config{STuples: 30, Seed: seed})
		c1, c2, c3 := Constants(0.5, 0.5, 0.5)
		want := map[[2]int64]int{}
		for _, r := range tb.R {
			for _, s := range tb.S {
				if r.Vals[RNum1].(int64) != s.Vals[SPkey].(int64) {
					continue
				}
				if r.Vals[RNum2].(int64) <= c1 || s.Vals[SNum2].(int64) <= c2 {
					continue
				}
				if F(r.Vals[RNum3].(int64), s.Vals[SNum3].(int64)) <= c3 {
					continue
				}
				want[[2]int64{r.Vals[RPkey].(int64), s.Vals[SPkey].(int64)}]++
			}
		}
		got := tb.ReferenceJoin(c1, c2, c3)
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if want[p] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinPlanStructure(t *testing.T) {
	p := JoinPlan(core.BloomJoin, 49, 49, 49)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Strategy != core.BloomJoin {
		t.Fatal("strategy lost")
	}
	// PostFilter references both sides via f().
	row := []core.Value{int64(1), int64(2), int64(60), int64(30), int64(2), int64(60), int64(30)}
	v := p.PostFilter.Eval(row) // f(30,30)=60 > 49
	if v != true {
		t.Fatalf("postfilter = %v", v)
	}
	row[3] = int64(10) // f(10,30)=40 <= 49
	if p.PostFilter.Eval(row) != false {
		t.Fatal("postfilter should reject")
	}
}

func TestFIsRegistered(t *testing.T) {
	c := &core.Call{Name: "f", Args: []core.Expr{&core.Const{V: int64(60)}, &core.Const{V: int64(50)}}}
	if got := c.Eval(nil); got != int64(10) {
		t.Fatalf("f(60,50) = %v, want 10", got)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{STuples: 50, Seed: 42})
	b := Generate(Config{STuples: 50, Seed: 42})
	for i := range a.R {
		for j := range a.R[i].Vals {
			if a.R[i].Vals[j] != b.R[i].Vals[j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}
