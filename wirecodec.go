package pier

// Binary wire codec for the catalog's schema payload (the only message
// type owned by the root package).

import (
	"pier/internal/env"
	"pier/internal/sql"
	"pier/internal/wire"
)

const tagSchemaPayload byte = 90

func init() {
	wire.Register(tagSchemaPayload, &schemaPayload{},
		func(e *wire.Encoder, m env.Message) {
			s := m.(*schemaPayload)
			e.Len(len(s.Cols))
			for _, c := range s.Cols {
				e.String(c)
			}
			e.String(s.Key)
			e.Len(len(s.Indexes))
			for _, ix := range s.Indexes {
				e.String(ix.Name)
				e.String(ix.Col)
			}
		},
		func(d *wire.Decoder) env.Message {
			s := &schemaPayload{}
			if n := d.Len(); n > 0 {
				s.Cols = make([]string, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					s.Cols = append(s.Cols, d.String())
				}
			}
			s.Key = d.String()
			if n := d.Len(); n > 0 {
				s.Indexes = make([]sql.Index, 0, wire.SliceCap(n))
				for i := 0; i < n && d.Err() == nil; i++ {
					s.Indexes = append(s.Indexes, sql.Index{Name: d.String(), Col: d.String()})
				}
			}
			return s
		})
}
