package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
	"pier/internal/workload"
)

var e2eCat = Catalog{
	"R":          {Name: "R", Cols: []string{"pkey", "num1", "num2", "num3"}, Key: "pkey"},
	"S":          {Name: "S", Cols: []string{"pkey", "num2", "num3"}, Key: "pkey"},
	"intrusions": {Name: "intrusions", Cols: []string{"fingerprint", "address"}, Key: "fingerprint"},
}

func TestSQLWorkloadQueryEndToEnd(t *testing.T) {
	// The §5.1 workload query expressed in SQL must produce the same
	// results as the hand-built plan, for every strategy name.
	sn := NewSimNetwork(16, topology.NewFullMeshInfinite(), 61, DefaultOptions())
	tables := workload.Generate(workload.Config{STuples: 30, Seed: 44})
	loadWorkload(sn, tables)
	c1, c2, c3 := workload.Constants(0.5, 0.5, 0.5)
	want := tables.ReferenceJoin(c1, c2, c3)

	for _, strat := range []string{"symmetric hash", "fetch matches", "semi-join", "bloom"} {
		src := fmt.Sprintf(`
			SELECT R.pkey, S.pkey
			FROM R, S
			WHERE R.num1 = S.pkey AND R.num2 > %d AND S.num2 > %d
			  AND f(R.num3, S.num3) > %d
			USING STRATEGY '%s'`, c1, c2, c3, strat)
		plan, err := ParseSQL(src, e2eCat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		plan.BloomWait = 3 * time.Second
		got, _, err := sn.Collect(0, plan, len(want), 10*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s via SQL: %d results, want %d", strat, len(got), len(want))
		}
	}
}

func TestSQLAggregateEndToEnd(t *testing.T) {
	sn := NewSimNetwork(12, topology.NewFullMeshInfinite(), 62, DefaultOptions())
	counts := map[string]int{"fpA": 12, "fpB": 5}
	iid := int64(0)
	for fp, n := range counts {
		for i := 0; i < n; i++ {
			iid++
			sn.Load("intrusions", fmt.Sprintf("%s/%d", fp, iid), iid,
				&Tuple{Rel: "intrusions", Vals: []Value{fp, "10.0.0.1"}}, 0)
		}
	}
	plan, err := ParseSQL(`
		SELECT I.fingerprint, count(*) AS cnt
		FROM intrusions AS I
		GROUP BY I.fingerprint
		HAVING cnt > 10`, e2eCat)
	if err != nil {
		t.Fatal(err)
	}
	plan.AggWait = 5 * time.Second
	got, _, err := sn.Collect(0, plan, 1, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Vals[0].(string) != "fpA" || got[0].Vals[1].(int64) != 12 {
		t.Fatalf("SQL aggregate returned %v", got)
	}
	_ = core.Count
}
