package pier

// Eviction/renewal regression tests: quota eviction changes what a node
// silently forgets, so these pin the soft-state healing behaviors that
// must keep masking that forgetting — publishers re-insert evicted
// index entries on renew, stats summaries re-converge within one
// refresh interval, and a renew of a spilled item promotes it back to
// the memory tier. Eviction is simulated by removing items straight
// from the owning stores (the quota path is pinned separately by the
// storage suite and the flood chaos scenario), so each test isolates
// one healing mechanism.

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/dht/storage"
	"pier/internal/index"
	"pier/internal/opt"
	"pier/internal/stats"
	"pier/internal/topology"
)

// evictNamespace removes every live item of a namespace matching keep
// from all live stores — a simulated quota eviction — and returns how
// many items it removed.
func evictNamespace(sn *SimNetwork, ns string, victim func(*storage.Item) bool) int {
	type identity struct {
		rid string
		iid int64
	}
	removed := 0
	for i, n := range sn.Nodes {
		if !sn.Alive(i) {
			continue
		}
		var ids []identity
		n.Provider().Scan(ns, func(it *storage.Item) bool {
			if victim(it) {
				ids = append(ids, identity{rid: it.ResourceID, iid: it.InstanceID})
			}
			return true
		})
		for _, id := range ids {
			if n.Provider().Store().Remove(ns, id.rid, id.iid) {
				removed++
			}
		}
	}
	return removed
}

// countIndexEntries tallies live index entries across all stores.
func countIndexEntries(sn *SimNetwork) int {
	entries := 0
	for i, n := range sn.Nodes {
		if !sn.Alive(i) {
			continue
		}
		n.Provider().Scan(index.NS, func(it *storage.Item) bool {
			if _, ok := it.Payload.(*index.Entry); ok {
				entries++
			}
			return true
		})
	}
	return entries
}

// TestEvictedIndexLeavesHealOnRenew: evicting a trie leaf's entries
// loses range-query results only until the publishers' next renewal —
// every renew re-inserts the entry at the leaf currently covering its
// key, so within one maintenance tick of the renewals the index answers
// in full again.
func TestEvictedIndexLeavesHealOnRenew(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-minute simulated index scenario")
	}
	const rows = 120
	schema := SQLTable{
		Name: "T", Cols: []string{"pkey", "num"}, Key: "pkey",
		Indexes: []SQLIndex{{Name: "t_num", Col: "num"}},
	}
	opts := DefaultOptions()
	opts.Index.Interval = 10 * time.Second
	sn := NewSimNetwork(16, topology.NewFullMesh(), 91, opts)

	sn.Nodes[0].RegisterTable(schema, time.Hour)
	if err := sn.Nodes[0].CreateIndex(schema, "t_num", "num", time.Hour); err != nil {
		t.Fatalf("CreateIndex: %v", err)
	}
	sn.RunFor(30 * time.Second)

	tup := func(i int) *Tuple {
		return &Tuple{Rel: "T", Vals: []Value{int64(i), int64(i*7919) % 1_000_000}}
	}
	for i := 0; i < rows; i++ {
		sn.Nodes[0].Publish("T", fmt.Sprint(i), int64(i), tup(i), 2*time.Hour)
	}
	sn.RunFor(2 * time.Minute) // place entries, let the trie split

	rangeRows := func() int {
		plan, err := ParseSQL("SELECT pkey FROM T WHERE num < 1000000", Catalog{"T": schema})
		if err != nil {
			t.Fatalf("ParseSQL: %v", err)
		}
		if plan.Tables[0].IndexScan == nil {
			t.Fatal("planner did not attach an index scan")
		}
		plan.AutoAccess = false // always take the index path
		plan.TTL = 5 * time.Minute
		got := map[int64]bool{}
		id, err := sn.Nodes[0].Query(plan, func(tp *core.Tuple, _ int) {
			got[tp.Vals[0].(int64)] = true
		})
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		sn.RunFor(90 * time.Second)
		sn.Nodes[0].Cancel(id)
		return len(got)
	}

	if got := rangeRows(); got != rows {
		t.Fatalf("baseline range query returned %d rows, want %d", got, rows)
	}

	isEntry := func(it *storage.Item) bool { _, ok := it.Payload.(*index.Entry); return ok }
	if removed := evictNamespace(sn, index.NS, isEntry); removed < rows {
		t.Fatalf("evicted only %d index entries, expected at least %d", removed, rows)
	}
	if left := countIndexEntries(sn); left != 0 {
		t.Fatalf("%d index entries survived the eviction", left)
	}
	// A few relocation puts from the maintenance tick may still be in
	// flight and re-deliver entries, so the gutted trie is "almost
	// empty" rather than exactly empty; what matters is that results
	// were lost and stay lost until the publishers renew.
	if got := rangeRows(); got >= rows/2 {
		t.Fatalf("range query over the gutted trie returned %d of %d rows", got, rows)
	}

	// The healing path: publishers renew their tuples (as wrappers do
	// every RefreshPeriod), and each renew re-inserts the index entry.
	for i := 0; i < rows; i++ {
		sn.Nodes[0].Renew("T", fmt.Sprint(i), int64(i), tup(i), 2*time.Hour)
	}
	sn.RunFor(opts.Index.Interval + 20*time.Second)

	if entries := countIndexEntries(sn); entries < rows {
		t.Fatalf("only %d entries healed within one maintenance tick, want >= %d", entries, rows)
	}
	if got := rangeRows(); got != rows {
		t.Fatalf("healed range query returned %d rows, want %d", got, rows)
	}
}

// TestEvictedStatsSummariesReconverge: evicting every published catalog
// summary blinds planners only until the next refresh tick — each node
// re-samples its local tables and re-publishes, so one interval later
// an arbitrary node's fetch is exact again.
func TestEvictedStatsSummariesReconverge(t *testing.T) {
	const (
		rows     = 200
		interval = 30 * time.Second
	)
	opts := DefaultOptions()
	opts.Stats.Interval = interval
	sn := NewSimNetwork(16, topology.NewFullMesh(), 92, opts)
	for i := 0; i < rows; i++ {
		sn.Load("R", fmt.Sprint(i), int64(i),
			&Tuple{Rel: "R", Vals: []Value{int64(i), int64(i % 97)}}, 0)
	}
	sn.RunFor(interval + 5*time.Second)

	fetchTuples := func(from int) (float64, bool) {
		var got opt.TableStats
		fetched := false
		sn.Nodes[from].Stats().Fetch("R", func(ts opt.TableStats, ok bool) {
			got, fetched = ts, ok
		})
		sn.RunFor(15 * time.Second)
		return got.Tuples, fetched
	}

	if tuples, ok := fetchTuples(3); !ok || tuples != rows {
		t.Fatalf("catalog not warm before eviction: ok=%v tuples=%.0f", ok, tuples)
	}

	all := func(*storage.Item) bool { return true }
	if removed := evictNamespace(sn, stats.CatalogNS, all); removed == 0 {
		t.Fatal("no catalog summaries found to evict")
	}

	// One refresh interval later every node has re-published; a node
	// that never fetched before must see the exact totals again.
	sn.RunFor(interval + 5*time.Second)
	republished := 0
	for i, n := range sn.Nodes {
		if !sn.Alive(i) {
			continue
		}
		republished += n.Provider().Store().Len(stats.CatalogNS)
	}
	if republished == 0 {
		t.Fatal("no summaries re-published within one refresh interval")
	}
	if tuples, ok := fetchTuples(7); !ok || tuples != rows {
		t.Fatalf("catalog did not re-converge: ok=%v tuples=%.0f, want %d", ok, tuples, rows)
	}
}

// TestRenewPromotesSpilledItemThroughProvider drives the disk-spill
// store through the full simulated put path: a publish flood past the
// namespace quota pushes the oldest items to disk, and a renew of one
// of them — arriving as an ordinary put at the owner — promotes it back
// to the memory tier with its disk copy tombstoned, leaving exactly one
// live copy carrying the extended lifetime.
func TestRenewPromotesSpilledItemThroughProvider(t *testing.T) {
	// The spill store needs the node's clock before the network exists;
	// bind it lazily and swap in the simulated clock (the log is empty,
	// so nothing reads the placeholder).
	now := time.Now
	sp, err := storage.NewSpill(func() time.Time { return now() },
		storage.BoundedConfig{Quotas: map[string]int64{"K": 1 << 10}}, t.TempDir())
	if err != nil {
		t.Fatalf("NewSpill: %v", err)
	}
	opts := DefaultOptions()
	opts.ProviderConfig.Store = sp
	sn := NewSimNetwork(1, topology.NewFullMesh(), 93, opts)
	now = sn.Net.Now

	node := sn.Nodes[0]
	tup := func(i int) *Tuple {
		return &Tuple{Rel: "K", Vals: []Value{int64(i)}, Pad: 80}
	}
	for i := 0; i < 40; i++ {
		node.Publish("K", fmt.Sprintf("k%02d", i), int64(i), tup(i), time.Hour)
	}
	sn.RunFor(2 * time.Minute) // let throttled puts retry and land

	before := sp.Stats()
	if before.SpilledLive == 0 {
		t.Fatalf("quota never pushed items to the disk tier: %+v", before)
	}
	// Every item shares one expiry, so victims fall in store order and
	// k00 — the first store — is the first one spilled.
	renewedAt := sn.Net.Now()
	node.Renew("K", "k00", 0, tup(0), 2*time.Hour)
	sn.RunFor(time.Minute)

	after := sp.Stats()
	promoted := (after.ItemsSpilled - before.ItemsSpilled) -
		int64(after.SpilledLive-before.SpilledLive)
	if promoted < 1 {
		t.Fatalf("renew promoted nothing: before %+v, after %+v", before, after)
	}
	items := sp.Retrieve("K", "k00")
	if len(items) != 1 {
		t.Fatalf("tiers hold %d copies of the renewed item, want exactly 1", len(items))
	}
	if !items[0].Expires.After(renewedAt.Add(90 * time.Minute)) {
		t.Fatalf("renew did not extend the promoted item's lifetime: expires %v", items[0].Expires)
	}
}
