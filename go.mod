module pier

go 1.22
