package pier

import (
	"time"

	"pier/internal/env"
)

// Session is the unified public surface of one PIER participant,
// implemented by both *Node (inside the discrete-event simulator) and
// *RealNode (over TCP). Application code — the admin plane, the
// pier-node daemon, examples, and tests — programs against Session and
// runs unchanged in either environment, extending the paper's "same
// code base" story (§5.2) from the node stack up through the embedding
// application.
//
// Threading: *Node methods must run on the node's event goroutine (for
// simulations, between Run calls); *RealNode implements every method by
// marshalling onto its event loop, so Session calls on a real node are
// safe from any goroutine. Callbacks (ResultFunc, LookupTable's cb,
// QuerySQL's done) are always invoked on the event loop — never block
// in them; hand results to channels instead.
type Session interface {
	// Addr returns the node's address.
	Addr() env.Addr

	// Publish stores a tuple in the DHT under (table, resourceID) with
	// the given lifetime. See Node.Publish.
	Publish(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration)

	// Renew refreshes a previously published tuple's lifetime. See
	// Node.Renew.
	Renew(table, resourceID string, instanceID int64, t *Tuple, lifetime time.Duration)

	// Query validates and disseminates a plan, streaming result tuples
	// into fn; it returns the query id for Cancel. See Node.Query.
	Query(p *Plan, fn ResultFunc) (uint64, error)

	// QuerySQL plans src against schemas fetched from the DHT catalog
	// and runs it. See Node.QuerySQL.
	QuerySQL(src string, tables []string, fn ResultFunc, done func(id uint64, err error))

	// Exec runs a DDL statement (CREATE INDEX) against the deployment.
	// See Node.Exec.
	Exec(src string, cat Catalog) error

	// RegisterTable publishes a table schema into the DHT catalog. See
	// Node.RegisterTable.
	RegisterTable(t SQLTable, lifetime time.Duration)

	// LookupTable resolves a table schema from the DHT catalog; cb
	// receives nil if the schema is unknown. See Node.LookupTable.
	LookupTable(name string, cb func(*SQLTable))

	// Cancel stops result delivery for a query started on this node,
	// reporting whether a live query with that id existed here.
	Cancel(id uint64) bool

	// Trace returns the distributed trace of a traced query initiated
	// on this node. See Node.Trace.
	Trace(id uint64) (tr *QueryTrace, ok bool)

	// Leave departs the overlay gracefully, handing soft state to a
	// peer. See Node.Leave.
	Leave()

	// Snapshot aggregates the node's observable state — identity,
	// routing, soft state, indexes, and every counter family — into
	// one serializable struct. See Node.Snapshot.
	Snapshot() Snapshot

	// LiveQueries lists the queries currently alive on this node.
	LiveQueries() []QueryInfo
}

// Both node flavors satisfy the shared surface.
var (
	_ Session = (*Node)(nil)
	_ Session = (*RealNode)(nil)
)
