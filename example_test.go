package pier_test

import (
	"fmt"
	"sort"
	"time"

	"pier"
	"pier/internal/topology"
)

// Example runs a distributed join on a simulated 16-node PIER
// deployment: publish two relations into the DHT, plan a SQL query, and
// stream the results — the whole public API in one screen.
func Example() {
	sn := pier.NewSimNetwork(16, topology.NewFullMesh(), 1, pier.DefaultOptions())

	// Publish base tuples under their primary keys.
	type file struct {
		name string
		host string
		size int64
	}
	for i, f := range []file{
		{"kernel.iso", "alpha", 700},
		{"kernel.iso", "beta", 700},
		{"notes.txt", "gamma", 1},
	} {
		t := &pier.Tuple{Rel: "files", Vals: []pier.Value{f.name, f.host, f.size}}
		sn.Load("files", fmt.Sprintf("%s@%s", f.name, f.host), int64(i), t, 0)
	}
	for i, h := range [][2]string{{"alpha", "us"}, {"beta", "eu"}, {"gamma", "us"}} {
		t := &pier.Tuple{Rel: "hosts", Vals: []pier.Value{h[0], h[1]}}
		sn.Load("hosts", h[0], int64(i), t, 0)
	}

	cat := pier.Catalog{
		"files": {Name: "files", Cols: []string{"name", "host", "size"}, Key: "name"},
		"hosts": {Name: "hosts", Cols: []string{"host", "region"}, Key: "host"},
	}
	plan, err := pier.ParseSQL(`
		SELECT f.name, h.region
		FROM files AS f, hosts AS h
		WHERE f.host = h.host AND f.size > 100`, cat)
	if err != nil {
		panic(err)
	}

	rows, _, err := sn.Collect(0, plan, 2, time.Minute)
	if err != nil {
		panic(err)
	}
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%v in %v", r.Vals[0], r.Vals[1]))
	}
	sort.Strings(out)
	for _, s := range out {
		fmt.Println(s)
	}
	// Output:
	// kernel.iso in eu
	// kernel.iso in us
}
