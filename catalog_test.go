package pier

import (
	"fmt"
	"testing"
	"time"

	"pier/internal/core"
	"pier/internal/topology"
)

func TestCatalogRegisterAndLookup(t *testing.T) {
	sn := NewSimNetwork(12, topology.NewFullMesh(), 91, DefaultOptions())
	sn.Nodes[3].RegisterTable(SQLTable{Name: "emp", Cols: []string{"id", "dept"}, Key: "id"}, time.Hour)
	sn.RunFor(30 * time.Second)

	var got *SQLTable
	called := false
	sn.Nodes[9].LookupTable("emp", func(tb *SQLTable) { got, called = tb, true })
	sn.RunFor(30 * time.Second)
	if !called || got == nil {
		t.Fatal("schema not resolvable from another node")
	}
	if got.Key != "id" || len(got.Cols) != 2 || got.Cols[1] != "dept" {
		t.Fatalf("schema corrupted in the DHT: %+v", got)
	}

	sn.Nodes[5].LookupTable("nosuch", func(tb *SQLTable) {
		if tb != nil {
			t.Errorf("unknown table resolved to %+v", tb)
		}
		called = true
	})
	sn.RunFor(time.Minute)
}

func TestQuerySQLUsesDHTCatalog(t *testing.T) {
	sn := NewSimNetwork(16, topology.NewFullMesh(), 92, DefaultOptions())
	sn.Nodes[0].RegisterTable(SQLTable{Name: "hosts", Cols: []string{"addr", "load"}, Key: "addr"}, time.Hour)
	for i := 0; i < 30; i++ {
		sn.Load("hosts", fmt.Sprintf("10.0.0.%d", i), int64(i),
			&Tuple{Rel: "hosts", Vals: []Value{fmt.Sprintf("10.0.0.%d", i), int64(i % 10)}}, 0)
	}
	sn.RunFor(30 * time.Second)

	rows := 0
	ran := false
	sn.Nodes[7].QuerySQL("SELECT addr FROM hosts WHERE load > 7", []string{"hosts"},
		func(tu *core.Tuple, _ int) { rows++ },
		func(id uint64, err error) {
			ran = true
			if err != nil {
				t.Errorf("QuerySQL: %v", err)
			}
		})
	sn.RunFor(2 * time.Minute)
	if !ran {
		t.Fatal("QuerySQL never completed planning")
	}
	if rows != 6 { // loads 8,9 of each decade: 3 decades × 2
		t.Fatalf("rows = %d, want 6", rows)
	}
}

func TestQuerySQLUnknownTableFails(t *testing.T) {
	sn := NewSimNetwork(8, topology.NewFullMesh(), 93, DefaultOptions())
	var gotErr error
	sn.Nodes[0].QuerySQL("SELECT x FROM ghost", []string{"ghost"},
		func(*core.Tuple, int) {}, func(id uint64, err error) { gotErr = err })
	sn.RunFor(2 * time.Minute)
	if gotErr == nil {
		t.Fatal("missing schema must surface an error")
	}
}

func TestCatalogSchemaExpiresWithoutRenewal(t *testing.T) {
	opts := DefaultOptions()
	opts.ProviderConfig.ActiveExpiry = true
	sn := NewSimNetwork(8, topology.NewFullMesh(), 94, opts)
	sn.Nodes[0].RegisterTable(SQLTable{Name: "tmp", Cols: []string{"a"}, Key: "a"}, 30*time.Second)
	sn.RunFor(10 * time.Second)

	found := false
	sn.Nodes[1].LookupTable("tmp", func(tb *SQLTable) { found = tb != nil })
	sn.RunFor(10 * time.Second)
	if !found {
		t.Fatal("schema should be live before its lifetime ends")
	}
	// Past the lifetime with no renew: soft state ages out (§3.2.3).
	sn.RunFor(time.Minute)
	sn.Nodes[1].LookupTable("tmp", func(tb *SQLTable) { found = tb != nil })
	sn.RunFor(time.Minute)
	if found {
		t.Fatal("unrenewed schema survived its lifetime")
	}
}
